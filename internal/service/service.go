// Package service is the networked front end of the simulator: a job
// model with admission control, request batching into the runner's
// supervised worker pool, NDJSON result streaming, on-disk memoization,
// and graceful drain. cmd/mctd mounts it over HTTP; the package itself
// is transport-light (handlers in http.go) and fully testable in
// process.
//
// The request path is admission → batch → supervise → stream:
//
//  1. admission bounds in-flight work (capacity, a small waiting room,
//     per-client fairness) and rejects everything beyond with 429/503 —
//     memory stays proportional to configuration, never to offered load;
//  2. admitted classify specs coalesce into batches that execute as one
//     supervised worker-pool fan-out; sweeps fan out per artifact;
//  3. the runner layer supplies deadlines, retries, and partial-result
//     collection (job-scoped via runner.WithOptions, not global state);
//  4. results stream back as NDJSON, byte-identical whether computed or
//     replayed from the memoization cache.
package service

import (
	"context"
	"expvar"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Config sizes the service. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// Capacity is the maximum number of admitted (in-flight) requests;
	// MaxWaiters more may briefly block for a slot (0 = default to
	// Capacity, negative = no waiting room), and no client may hold more
	// than PerClient slots (0 = no per-client cap). AdmitWait bounds how
	// long a waiter blocks before 429.
	Capacity   int
	MaxWaiters int
	PerClient  int
	AdmitWait  time.Duration

	// BatchSize and BatchWait shape classify batching: a batch closes at
	// BatchSize items or BatchWait after its first item.
	BatchSize int
	BatchWait time.Duration

	// CacheDir roots the memoization cache (shared with cmd/paperbench);
	// NoCache disables it. CheckpointDir roots sweep checkpoints.
	CacheDir      string
	NoCache       bool
	CheckpointDir string

	// Limits bounds uploaded traces; MaxSpecAccesses bounds spec-path
	// classification size.
	Limits          trace.Limits
	MaxSpecAccesses uint64

	// TaskTimeout and Retries are the supervision policy for every job's
	// fan-out (0 timeout = unbounded).
	TaskTimeout time.Duration
	Retries     int

	// MaxJobs bounds the in-memory job registry (oldest evicted).
	MaxJobs int

	// TraceSpans sizes the in-memory span ring backing GET
	// /v1/trace/{job} (0 = default 4096). The ring is always on — spans
	// cost a few hundred bytes each and the ring is bounded, so request
	// traces are available without opt-in flags.
	TraceSpans int

	// JournalDir roots the durable job journal (an append-only WAL under
	// results/jobs/ in production). Empty disables journaling — and with
	// it crash recovery and post-restart idempotency accounting.
	JournalDir string
	// Fsync is the durability policy for the journal (and, via cmd/mctd,
	// for checkpoint/cache writes): PolicyOff survives process crashes
	// (page cache), PolicyData also survives power loss for completed
	// jobs, PolicyAlways fsyncs every record.
	Fsync durable.Policy

	// IdemMaxEntries / IdemMaxBodyBytes bound the idempotency replay
	// store (0 = 4096 entries / 4 MiB per body). Responses larger than
	// the body cap are not replayed — retries recompute via the memo
	// cache instead, which is still byte-identical.
	IdemMaxEntries   int
	IdemMaxBodyBytes int

	// Brownout configures the overload-shedding ladder (disabled unless
	// Brownout.Enabled).
	Brownout BrownoutConfig

	// Tenant bounds per-tenant MRC consumption (samples processed,
	// bytes ingested, sampled-set size). The zero value accounts but
	// never rejects.
	Tenant TenantQuota

	// Cluster shards memoizable cells (classify specs, sweep cells)
	// across a fleet by consistent hashing over their memo keys. Nil (or
	// a nil *cluster.Cluster, the -peers-empty case) means single-node:
	// every cell computes locally through exactly the pre-cluster code
	// path. The service owns the cluster's lifecycle once passed here —
	// Drain closes it.
	Cluster *cluster.Cluster

	// Workers caps concurrent local cell computation (0 = GOMAXPROCS).
	// Clustered sweeps fan out wider than this so remote forwards overlap,
	// but at most Workers cells ever compute on this node at once.
	Workers int

	// Logf receives operational diagnostics (journal damage, brownout
	// transitions, recovery progress). Nil discards.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	if c.MaxWaiters == 0 {
		c.MaxWaiters = c.Capacity
	}
	if c.AdmitWait == 0 {
		c.AdmitWait = 100 * time.Millisecond
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.BatchWait == 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.CacheDir == "" {
		c.CacheDir = runner.DefaultCacheDir
	}
	if c.CheckpointDir == "" {
		c.CheckpointDir = runner.DefaultCheckpointDir
	}
	if c.Limits == (trace.Limits{}) {
		c.Limits = trace.Limits{MaxRecords: 10_000_000, MaxBytes: 1 << 28}
	}
	if c.MaxSpecAccesses == 0 {
		c.MaxSpecAccesses = 5_000_000
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 1024
	}
	if c.TraceSpans == 0 {
		c.TraceSpans = 4096
	}
	return c
}

// Service is one mctd instance: the admission gate, the job registry,
// the classify batcher, the memoization cache, and the metrics they
// feed.
type Service struct {
	cfg   Config
	adm   *admission
	jobs  *jobs
	cache *runner.Cache // nil with NoCache
	bat   *batcher
	logf  func(format string, args ...any)

	// Cluster spine: the ring + forwarding layer (nil single-node) and
	// the local-compute semaphore that keeps a clustered sweep's widened
	// fan-out from widening local compute (nil when unclustered).
	cluster  *cluster.Cluster
	compSem  chan struct{}
	flightMu sync.Mutex
	flights  map[string]*cellFlight

	// Robustness spine: the durable job journal (write-through from the
	// registry, replayed by Recover), the idempotency replay store, and
	// the brownout overload controller.
	jlog        *jobLog
	jlogOpenErr error
	idem        *idemStore
	brown       *brownout
	recoverWG   sync.WaitGroup

	// Tenant quota spine for /v1/mrc: the windowed ledger plus its
	// counters.
	tenants      *tenantLedger
	mrcReqs      counter // /v1/mrc requests past the shed gate
	mrcSamples   counter // SHARDS-sampled references processed
	mrcIngest    counter // uploaded trace bytes ingested by /v1/mrc
	quotaRejects counter // requests rejected by tenant quota

	start     time.Time
	records   counter // simulated records (instructions/accesses), for rate
	retried   counter
	slow      counter // slow-task detections (fed by cmd/mctd's slow log)
	recovered counter // jobs resolved by boot-time recovery
	jnlWrites counter
	jnlErrs   counter
	vars      *expvar.Map

	// Observability spine: a per-instance metric registry (Prometheus
	// exposition), the span ring behind GET /v1/trace/{job}, and the
	// request-path histograms. Per-instance, not process-global, so tests
	// boot many services without colliding.
	reg      *obs.Registry
	ring     *obs.Ring
	hAdmit   *obs.Histogram // seconds spent in the admission gate
	hClassif *obs.Histogram // classify request duration, seconds
	hSweep   *obs.Histogram // sweep request duration, seconds
	hMRC     *obs.Histogram // mrc request duration, seconds
	hBatch   *obs.Histogram // classify batch sizes
}

// New builds a Service from cfg (zero fields defaulted). Callers own its
// lifecycle: serve s.Handler(), then Drain on shutdown.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		adm:   newAdmission(cfg.Capacity, cfg.MaxWaiters, cfg.PerClient, cfg.AdmitWait),
		jobs:  newJobs(cfg.MaxJobs),
		start: time.Now(),
	}
	s.logf = cfg.Logf
	s.cluster = cfg.Cluster
	if s.cluster.Enabled() {
		s.compSem = make(chan struct{}, s.computeWorkers())
	}
	if !cfg.NoCache {
		s.cache = runner.Open(cfg.CacheDir)
	}
	s.jlog = &jobLog{logf: cfg.Logf, errs: &s.jnlErrs, writes: &s.jnlWrites}
	if cfg.JournalDir != "" {
		j, err := journal.Open(cfg.JournalDir, journal.Options{Sync: cfg.Fsync, Logf: cfg.Logf})
		if err != nil {
			// Deferred, not swallowed: Recover (the boot path) surfaces it so
			// an operator's misconfigured journal dir fails the boot, while
			// tests that never recover still construct a service.
			s.jlogOpenErr = err
		} else {
			s.jlog.j = j
		}
	}
	s.idem = newIdemStore(cfg.IdemMaxEntries, cfg.IdemMaxBodyBytes)
	s.tenants = newTenantLedger(cfg.Tenant)
	s.brown = newBrownout(s, cfg.Brownout)
	s.ring = obs.NewRing(cfg.TraceSpans)
	s.reg = s.buildRegistry()
	s.bat = newBatcher(cfg.BatchSize, cfg.BatchWait, s.runBatch)
	s.vars = s.buildVars()
	s.brown.run()
	return s
}

// supervision is the job-scoped option set every fan-out runs under.
func (s *Service) supervision() []runner.Option {
	opts := []runner.Option{runner.Retry(s.cfg.Retries, runner.DefaultBackoff)}
	if s.cfg.TaskTimeout > 0 {
		opts = append(opts, runner.Deadline(s.cfg.TaskTimeout))
	}
	if s.cfg.Workers > 0 {
		opts = append(opts, runner.Workers(s.cfg.Workers))
	}
	return opts
}

// StartDrain shuts the admission gate: new work is rejected with 503,
// in-flight work keeps running. healthz flips to draining so load
// balancers stop routing here.
func (s *Service) StartDrain() { s.adm.StartDrain() }

// Drain performs the full graceful shutdown: gate shut, wait for every
// admitted request AND every recovery re-drive to finish (bounded by
// ctx), then stop the batcher, the brownout ticker, and the journal.
// After Drain returns nil the process holds no in-flight work.
func (s *Service) Drain(ctx context.Context) error {
	s.adm.StartDrain()
	if err := s.adm.AwaitIdle(ctx); err != nil {
		return fmt.Errorf("service: drain: %w", err)
	}
	if err := s.AwaitRecovery(ctx); err != nil {
		return fmt.Errorf("service: drain: recovery jobs: %w", err)
	}
	s.bat.stop()
	s.brown.close()
	s.cluster.Close()
	if s.jlog != nil && s.jlog.j != nil {
		if err := s.jlog.j.Close(); err != nil && s.logf != nil {
			s.logf("service: closing journal: %v", err)
		}
	}
	return nil
}

// Cache exposes the memoization cache (nil when disabled) for wiring
// diagnostics loggers.
func (s *Service) Cache() *runner.Cache { return s.cache }

// Cluster exposes the cluster layer (nil when single-node) for wiring
// and tests.
func (s *Service) Cluster() *cluster.Cluster { return s.cluster }

// Vars returns the service's metrics as an unpublished expvar.Map —
// test instances never collide in the process-global expvar registry;
// cmd/mctd publishes it explicitly.
func (s *Service) Vars() *expvar.Map { return s.vars }

// Metrics returns the instance's Prometheus metric registry (the
// naming-convention test and cmd/mctd's wiring read it).
func (s *Service) Metrics() *obs.Registry { return s.reg }

// TraceRing returns the instance's span ring; cmd/mctd injects it into
// other exporters or tests read it directly.
func (s *Service) TraceRing() *obs.Ring { return s.ring }

// NoteSlowTask counts one slow-task detection (cmd/mctd's slow log
// calls this alongside emitting the structured event).
func (s *Service) NoteSlowTask() { s.slow.Add(1) }

// buildRegistry declares the Prometheus-exposed metrics. Counters and
// gauges read the same atomics the expvar map reads — registration is a
// second view over one source of truth, never double accounting.
func (s *Service) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("mct_jobs_accepted_total", "Requests admitted past the admission gate.",
		func() float64 { return float64(s.adm.accepted.Load()) })
	r.Counter("mct_jobs_rejected_total", "Requests rejected (capacity, per-client cap, or draining).",
		func() float64 {
			return float64(s.adm.rejectedFull.Load() + s.adm.rejectedClient.Load() + s.adm.rejectedDrain.Load())
		})
	r.Counter("mct_jobs_retried_total", "Task retries performed by the supervision layer.",
		func() float64 { return float64(s.retried.Load()) })
	r.Counter("mct_records_total", "Simulated trace records processed.",
		func() float64 { return float64(s.records.Load()) })
	r.Counter("mct_cache_hits_total", "Memoization cache hits.",
		func() float64 { h, _ := s.cache.Stats(); return float64(h) })
	r.Counter("mct_cache_misses_total", "Memoization cache misses.",
		func() float64 { _, m := s.cache.Stats(); return float64(m) })
	r.Counter("mct_mrc_requests_total", "MRC requests past the shed gate.",
		func() float64 { return float64(s.mrcReqs.Load()) })
	r.Counter("mct_mrc_samples_total", "SHARDS-sampled references processed by MRC profiling.",
		func() float64 { return float64(s.mrcSamples.Load()) })
	r.Counter("mct_mrc_ingest_bytes_total", "Uploaded trace bytes ingested by /v1/mrc.",
		func() float64 { return float64(s.mrcIngest.Load()) })
	r.Counter("mct_mrc_quota_rejected_total", "Requests rejected or aborted by tenant quota.",
		func() float64 { return float64(s.quotaRejects.Load()) })
	r.Counter("mct_slow_tasks_total", "Task attempts flagged by the slow-task log.",
		func() float64 { return float64(s.slow.Load()) })
	r.Counter("mct_journal_records_total", "Job journal records appended.",
		func() float64 { return float64(s.jnlWrites.Load()) })
	r.Counter("mct_journal_errors_total", "Job journal append failures (durability degraded).",
		func() float64 { return float64(s.jnlErrs.Load()) })
	r.Counter("mct_jobs_recovered_total", "Jobs resolved by boot-time journal recovery.",
		func() float64 { return float64(s.recovered.Load()) })
	r.Counter("mct_idem_replayed_total", "Requests answered from the idempotency replay store.",
		func() float64 { return float64(s.idem.replayed.Load()) })
	r.Counter("mct_idem_stored_total", "Outcomes committed to the idempotency replay store.",
		func() float64 { return float64(s.idem.stored.Load()) })
	r.Counter("mct_idem_coalesced_total", "Duplicate requests coalesced onto an in-flight leader.",
		func() float64 { return float64(s.idem.inflight.Load()) })
	r.Counter("mct_brownout_transitions_total", "Brownout ladder level changes.",
		func() float64 { return float64(s.brown.transitions.Load()) })
	r.Counter("mct_brownout_shed_total", "Requests shed by the brownout controller.",
		func() float64 { return float64(s.brown.sheds.Load()) })
	r.Gauge("mct_brownout_level", "Current brownout ladder level (0 normal .. 3 breaker open).",
		func() float64 { return float64(s.brown.Level()) })
	r.Gauge("mct_queue_inflight", "Requests currently admitted and in flight.",
		func() float64 { return float64(s.adm.Inflight()) })
	r.Gauge("mct_queue_waiters", "Requests blocked waiting for an admission slot.",
		func() float64 { return float64(s.adm.Waiters()) })
	r.Gauge("mct_queue_capacity", "Configured admission capacity.",
		func() float64 { return float64(s.cfg.Capacity) })
	r.Gauge("mct_draining", "1 while the admission gate is shut for shutdown.",
		func() float64 {
			if s.adm.Draining() {
				return 1
			}
			return 0
		})
	// Cluster metrics read the cluster's own atomics (all zero and
	// harmless when single-node — the counters are nil-safe).
	r.Counter("mct_cluster_forwards_total", "Cells forwarded to their remote ring owner.",
		func() float64 { return float64(s.cluster.Counters().Forwards) })
	r.Counter("mct_cluster_forward_failures_total", "Cell forwards that exhausted retries and fell back to local compute.",
		func() float64 { return float64(s.cluster.Counters().ForwardFails) })
	r.Counter("mct_cluster_steals_total", "Straggling forwards stolen back (pulled or recomputed locally).",
		func() float64 { return float64(s.cluster.Counters().Steals) })
	r.Counter("mct_cluster_peer_ejections_total", "Peers ejected from the ring after failed health probes.",
		func() float64 { return float64(s.cluster.Counters().Ejections) })
	r.Counter("mct_cluster_peer_restores_total", "Ejected peers restored to the ring after a healthy probe.",
		func() float64 { return float64(s.cluster.Counters().Restores) })
	r.Counter("mct_cluster_cache_fills_total", "Remote cell results written through to the local memo cache.",
		func() float64 { return float64(s.cluster.Counters().CacheFills) })
	r.Counter("mct_cluster_cache_pulls_total", "Cache-pull requests issued to peers.",
		func() float64 { return float64(s.cluster.Counters().CachePulls) })
	r.Counter("mct_cluster_cache_pull_hits_total", "Cache pulls answered from a peer's memo cache.",
		func() float64 { return float64(s.cluster.Counters().PullHits) })
	r.Gauge("mct_cluster_ring_size", "Nodes currently in the hash ring (1 when single-node).",
		func() float64 {
			if ring := s.cluster.Ring(); ring != nil {
				return float64(len(ring.Peers()))
			}
			return 1
		})
	s.hAdmit = r.Histogram("mct_admission_wait_seconds",
		"Time spent in the admission gate, accepted or rejected.", obs.LatencyBuckets)
	s.hClassif = r.Histogram("mct_classify_duration_seconds",
		"Classify request duration, admission to last byte.", obs.LatencyBuckets)
	s.hSweep = r.Histogram("mct_sweep_duration_seconds",
		"Sweep request duration, admission to last byte.", obs.LatencyBuckets)
	s.hMRC = r.Histogram("mct_mrc_duration_seconds",
		"MRC request duration, admission to last byte.", obs.LatencyBuckets)
	s.hBatch = r.Histogram("mct_classify_batch_size",
		"Classify requests coalesced per batch.", obs.SizeBuckets)
	return r
}

// counter is a tiny expvar-compatible atomic counter.
type counter struct{ v expvar.Int }

func (c *counter) Add(n uint64) { c.v.Add(int64(n)) }
func (c *counter) Load() int64  { return c.v.Value() }

// buildVars wires every metric as a live expvar.Func over the service's
// state: scraping /metrics always sees current values, nothing is
// double-accounted.
func (s *Service) buildVars() *expvar.Map {
	m := new(expvar.Map).Init()
	gauge := func(name string, f func() any) { m.Set(name, expvar.Func(f)) }
	gauge("jobs_accepted", func() any { return s.adm.accepted.Load() })
	gauge("jobs_rejected_busy", func() any { return s.adm.rejectedFull.Load() })
	gauge("jobs_rejected_client", func() any { return s.adm.rejectedClient.Load() })
	gauge("jobs_rejected_drain", func() any { return s.adm.rejectedDrain.Load() })
	gauge("jobs_rejected", func() any {
		return s.adm.rejectedFull.Load() + s.adm.rejectedClient.Load() + s.adm.rejectedDrain.Load()
	})
	gauge("jobs_retried", func() any { return s.retried.Load() })
	gauge("queue_inflight", func() any { return s.adm.Inflight() })
	gauge("queue_waiters", func() any { return s.adm.Waiters() })
	gauge("queue_peak", func() any { return s.adm.Peak() })
	gauge("queue_capacity", func() any { return s.cfg.Capacity })
	gauge("draining", func() any {
		if s.adm.Draining() {
			return 1
		}
		return 0
	})
	gauge("cache_hits", func() any { h, _ := s.cache.Stats(); return h })
	gauge("cache_misses", func() any { _, mi := s.cache.Stats(); return mi })
	gauge("cache_hit_rate", func() any {
		h, mi := s.cache.Stats()
		if h+mi == 0 {
			return 0.0
		}
		return float64(h) / float64(h+mi)
	})
	gauge("records_total", func() any { return s.records.Load() })
	gauge("records_per_sec", func() any {
		el := time.Since(s.start).Seconds()
		if el <= 0 {
			return 0.0
		}
		return float64(s.records.Load()) / el
	})
	gauge("mrc_requests", func() any { return s.mrcReqs.Load() })
	gauge("mrc_samples", func() any { return s.mrcSamples.Load() })
	gauge("mrc_ingest_bytes", func() any { return s.mrcIngest.Load() })
	gauge("mrc_quota_rejected", func() any { return s.quotaRejects.Load() })
	gauge("slow_tasks", func() any { return s.slow.Load() })
	gauge("journal_records", func() any { return s.jnlWrites.Load() })
	gauge("journal_errors", func() any { return s.jnlErrs.Load() })
	gauge("jobs_recovered", func() any { return s.recovered.Load() })
	gauge("idem_replayed", func() any { return s.idem.replayed.Load() })
	gauge("idem_stored", func() any { return s.idem.stored.Load() })
	gauge("idem_coalesced", func() any { return s.idem.inflight.Load() })
	gauge("brownout_level", func() any { return s.brown.Level() })
	gauge("brownout_transitions", func() any { return s.brown.transitions.Load() })
	gauge("brownout_shed", func() any { return s.brown.sheds.Load() })
	gauge("cluster_forwards", func() any { return s.cluster.Counters().Forwards })
	gauge("cluster_forward_failures", func() any { return s.cluster.Counters().ForwardFails })
	gauge("cluster_steals", func() any { return s.cluster.Counters().Steals })
	gauge("cluster_ejections", func() any { return s.cluster.Counters().Ejections })
	gauge("cluster_restores", func() any { return s.cluster.Counters().Restores })
	gauge("cluster_cache_fills", func() any { return s.cluster.Counters().CacheFills })
	gauge("cluster_cache_pulls", func() any { return s.cluster.Counters().CachePulls })
	gauge("cluster_cache_pull_hits", func() any { return s.cluster.Counters().PullHits })
	gauge("cluster_ring_size", func() any {
		if ring := s.cluster.Ring(); ring != nil {
			return len(ring.Peers())
		}
		return 1
	})
	// Histogram digests, flattened to numbers: the expvar map stays
	// decodable as map[string]float64 (a contract existing clients and
	// tests rely on); full bucket detail lives in ?format=prometheus.
	histDigest := func(prefix string, h *obs.Histogram) {
		gauge(prefix+"_count", func() any { return h.Count() })
		gauge(prefix+"_p50_ms", func() any { return h.Quantile(0.5) * 1000 })
		gauge(prefix+"_p99_ms", func() any { return h.Quantile(0.99) * 1000 })
	}
	histDigest("admit_wait", s.hAdmit)
	histDigest("classify_latency", s.hClassif)
	histDigest("sweep_latency", s.hSweep)
	histDigest("mrc_latency", s.hMRC)
	gauge("batch_size_count", func() any { return s.hBatch.Count() })
	gauge("batch_size_p50", func() any { return s.hBatch.Quantile(0.5) })
	return m
}

// noteRetries feeds the jobs_retried counter from a finished job's
// failure structure (attempt counts above 1 mean the supervision layer
// retried).
func (s *Service) noteRetries(failures []Failure) {
	for _, f := range failures {
		if f.Attempts > 1 {
			s.retried.Add(uint64(f.Attempts - 1))
		}
	}
}
