// Package service is the networked front end of the simulator: a job
// model with admission control, request batching into the runner's
// supervised worker pool, NDJSON result streaming, on-disk memoization,
// and graceful drain. cmd/mctd mounts it over HTTP; the package itself
// is transport-light (handlers in http.go) and fully testable in
// process.
//
// The request path is admission → batch → supervise → stream:
//
//  1. admission bounds in-flight work (capacity, a small waiting room,
//     per-client fairness) and rejects everything beyond with 429/503 —
//     memory stays proportional to configuration, never to offered load;
//  2. admitted classify specs coalesce into batches that execute as one
//     supervised worker-pool fan-out; sweeps fan out per artifact;
//  3. the runner layer supplies deadlines, retries, and partial-result
//     collection (job-scoped via runner.WithOptions, not global state);
//  4. results stream back as NDJSON, byte-identical whether computed or
//     replayed from the memoization cache.
package service

import (
	"context"
	"expvar"
	"fmt"
	"time"

	"repro/internal/runner"
	"repro/internal/trace"
)

// Config sizes the service. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// Capacity is the maximum number of admitted (in-flight) requests;
	// MaxWaiters more may briefly block for a slot (0 = default to
	// Capacity, negative = no waiting room), and no client may hold more
	// than PerClient slots (0 = no per-client cap). AdmitWait bounds how
	// long a waiter blocks before 429.
	Capacity   int
	MaxWaiters int
	PerClient  int
	AdmitWait  time.Duration

	// BatchSize and BatchWait shape classify batching: a batch closes at
	// BatchSize items or BatchWait after its first item.
	BatchSize int
	BatchWait time.Duration

	// CacheDir roots the memoization cache (shared with cmd/paperbench);
	// NoCache disables it. CheckpointDir roots sweep checkpoints.
	CacheDir      string
	NoCache       bool
	CheckpointDir string

	// Limits bounds uploaded traces; MaxSpecAccesses bounds spec-path
	// classification size.
	Limits          trace.Limits
	MaxSpecAccesses uint64

	// TaskTimeout and Retries are the supervision policy for every job's
	// fan-out (0 timeout = unbounded).
	TaskTimeout time.Duration
	Retries     int

	// MaxJobs bounds the in-memory job registry (oldest evicted).
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 64
	}
	if c.MaxWaiters == 0 {
		c.MaxWaiters = c.Capacity
	}
	if c.AdmitWait == 0 {
		c.AdmitWait = 100 * time.Millisecond
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.BatchWait == 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.CacheDir == "" {
		c.CacheDir = runner.DefaultCacheDir
	}
	if c.CheckpointDir == "" {
		c.CheckpointDir = runner.DefaultCheckpointDir
	}
	if c.Limits == (trace.Limits{}) {
		c.Limits = trace.Limits{MaxRecords: 10_000_000, MaxBytes: 1 << 28}
	}
	if c.MaxSpecAccesses == 0 {
		c.MaxSpecAccesses = 5_000_000
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 1024
	}
	return c
}

// Service is one mctd instance: the admission gate, the job registry,
// the classify batcher, the memoization cache, and the metrics they
// feed.
type Service struct {
	cfg   Config
	adm   *admission
	jobs  *jobs
	cache *runner.Cache // nil with NoCache
	bat   *batcher

	start   time.Time
	records counter // simulated records (instructions/accesses), for rate
	retried counter
	vars    *expvar.Map
}

// New builds a Service from cfg (zero fields defaulted). Callers own its
// lifecycle: serve s.Handler(), then Drain on shutdown.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		adm:   newAdmission(cfg.Capacity, cfg.MaxWaiters, cfg.PerClient, cfg.AdmitWait),
		jobs:  newJobs(cfg.MaxJobs),
		start: time.Now(),
	}
	if !cfg.NoCache {
		s.cache = runner.Open(cfg.CacheDir)
	}
	s.bat = newBatcher(cfg.BatchSize, cfg.BatchWait, s.runBatch)
	s.vars = s.buildVars()
	return s
}

// supervision is the job-scoped option set every fan-out runs under.
func (s *Service) supervision() []runner.Option {
	opts := []runner.Option{runner.Retry(s.cfg.Retries, runner.DefaultBackoff)}
	if s.cfg.TaskTimeout > 0 {
		opts = append(opts, runner.Deadline(s.cfg.TaskTimeout))
	}
	return opts
}

// StartDrain shuts the admission gate: new work is rejected with 503,
// in-flight work keeps running. healthz flips to draining so load
// balancers stop routing here.
func (s *Service) StartDrain() { s.adm.StartDrain() }

// Drain performs the full graceful shutdown: gate shut, wait for every
// admitted request to finish (bounded by ctx), then stop the batcher.
// After Drain returns nil the process holds no in-flight work.
func (s *Service) Drain(ctx context.Context) error {
	s.adm.StartDrain()
	if err := s.adm.AwaitIdle(ctx); err != nil {
		return fmt.Errorf("service: drain: %w", err)
	}
	s.bat.stop()
	return nil
}

// Cache exposes the memoization cache (nil when disabled) for wiring
// diagnostics loggers.
func (s *Service) Cache() *runner.Cache { return s.cache }

// Vars returns the service's metrics as an unpublished expvar.Map —
// test instances never collide in the process-global expvar registry;
// cmd/mctd publishes it explicitly.
func (s *Service) Vars() *expvar.Map { return s.vars }

// counter is a tiny expvar-compatible atomic counter.
type counter struct{ v expvar.Int }

func (c *counter) Add(n uint64) { c.v.Add(int64(n)) }
func (c *counter) Load() int64  { return c.v.Value() }

// buildVars wires every metric as a live expvar.Func over the service's
// state: scraping /metrics always sees current values, nothing is
// double-accounted.
func (s *Service) buildVars() *expvar.Map {
	m := new(expvar.Map).Init()
	gauge := func(name string, f func() any) { m.Set(name, expvar.Func(f)) }
	gauge("jobs_accepted", func() any { return s.adm.accepted.Load() })
	gauge("jobs_rejected_busy", func() any { return s.adm.rejectedFull.Load() })
	gauge("jobs_rejected_client", func() any { return s.adm.rejectedClient.Load() })
	gauge("jobs_rejected_drain", func() any { return s.adm.rejectedDrain.Load() })
	gauge("jobs_rejected", func() any {
		return s.adm.rejectedFull.Load() + s.adm.rejectedClient.Load() + s.adm.rejectedDrain.Load()
	})
	gauge("jobs_retried", func() any { return s.retried.Load() })
	gauge("queue_inflight", func() any { return s.adm.Inflight() })
	gauge("queue_waiters", func() any { return s.adm.Waiters() })
	gauge("queue_peak", func() any { return s.adm.Peak() })
	gauge("queue_capacity", func() any { return s.cfg.Capacity })
	gauge("draining", func() any {
		if s.adm.Draining() {
			return 1
		}
		return 0
	})
	gauge("cache_hits", func() any { h, _ := s.cache.Stats(); return h })
	gauge("cache_misses", func() any { _, mi := s.cache.Stats(); return mi })
	gauge("cache_hit_rate", func() any {
		h, mi := s.cache.Stats()
		if h+mi == 0 {
			return 0.0
		}
		return float64(h) / float64(h+mi)
	})
	gauge("records_total", func() any { return s.records.Load() })
	gauge("records_per_sec", func() any {
		el := time.Since(s.start).Seconds()
		if el <= 0 {
			return 0.0
		}
		return float64(s.records.Load()) / el
	})
	return m
}

// noteRetries feeds the jobs_retried counter from a finished job's
// failure structure (attempt counts above 1 mean the supervision layer
// retried).
func (s *Service) noteRetries(failures []Failure) {
	for _, f := range failures {
		if f.Attempts > 1 {
			s.retried.Add(uint64(f.Attempts - 1))
		}
	}
}
