package service

import (
	"context"
	"net/http"
	"sync"
)

// IdemHeader carries a client's idempotency key. Mirrors
// internal/client.IdempotencyHeader (asserted equal by test) — the
// service does not import the client package, nor vice versa.
const IdemHeader = "X-Mct-Idempotency-Key"

// IdemReplayedHeader marks a response served from the idempotency
// replay store rather than computed.
const IdemReplayedHeader = "X-Mct-Idem-Replayed"

// storedResponse is one replayable outcome: status, the headers worth
// replaying, and the body bytes.
type storedResponse struct {
	status int
	jobID  string
	ctype  string
	body   []byte
}

// idemEntry is one key's lifecycle: open while the first request with
// this key executes (duplicates block on done — singleflight), then
// either committed with a response to replay or aborted (retryable
// outcome: the next duplicate becomes the new leader).
type idemEntry struct {
	done chan struct{}
	resp *storedResponse // nil after an abort
}

// idemStore dedupes requests by idempotency key: an in-memory,
// FIFO-bounded map of completed outcomes plus in-flight singleflight.
// Only non-retryable outcomes (2xx, 4xx except 429) are stored — a 503
// or 500 must genuinely retry. Persistence across restarts comes from
// the layers below, not from this store: the job journal re-drives
// interrupted work into the memoization cache, so a post-crash retry
// recomputes nothing even though its key is no longer here.
type idemStore struct {
	mu         sync.Mutex
	entries    map[string]*idemEntry
	order      []string // committed keys, FIFO for eviction
	maxEntries int
	maxBody    int

	replayed counter
	inflight counter // duplicate-while-running collapses
	stored   counter
}

func newIdemStore(maxEntries, maxBody int) *idemStore {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if maxBody <= 0 {
		maxBody = 4 << 20
	}
	return &idemStore{entries: map[string]*idemEntry{}, maxEntries: maxEntries, maxBody: maxBody}
}

// begin claims the key. leader=true means the caller executes the
// request and must call commit or abort. leader=false returns the entry
// to wait on.
func (st *idemStore) begin(key string) (e *idemEntry, leader bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.entries[key]; ok {
		return e, false
	}
	e = &idemEntry{done: make(chan struct{})}
	st.entries[key] = e
	return e, true
}

// wait blocks until the leader resolves the entry (or ctx expires) and
// returns the stored response, nil if the leader aborted.
func (e *idemEntry) wait(ctx context.Context) (*storedResponse, error) {
	select {
	case <-e.done:
		return e.resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// commit stores the outcome for replay and releases waiters.
func (st *idemStore) commit(key string, resp *storedResponse) {
	st.mu.Lock()
	e, ok := st.entries[key]
	if ok {
		e.resp = resp
		st.order = append(st.order, key)
		st.stored.Add(1)
		for len(st.order) > st.maxEntries {
			delete(st.entries, st.order[0])
			st.order = st.order[1:]
		}
	}
	st.mu.Unlock()
	if ok {
		close(e.done)
	}
}

// abort drops the key (retryable outcome, or a body too large to
// retain) and releases waiters empty-handed — the next request with
// this key executes for real.
func (st *idemStore) abort(key string) {
	st.mu.Lock()
	e, ok := st.entries[key]
	if ok {
		delete(st.entries, key)
	}
	st.mu.Unlock()
	if ok {
		close(e.done)
	}
}

// storable reports whether an outcome should be retained for replay:
// only statuses a well-behaved client would not retry. 499 ("client
// closed request") is the canonical counter-example: it records that
// the first attempt's connection died mid-request — replaying it to the
// retry would hand the client back its own failure and make the abort
// permanent.
func storable(status int) bool {
	if status >= 500 || status == http.StatusTooManyRequests || status == 499 {
		return false
	}
	return true
}

// recordingWriter tees a response into memory while passing it through,
// so a committed outcome can be replayed byte-identically. Recording
// stops (and the outcome becomes non-storable) past maxBody — giant
// streams fall back to memo-cache-backed recompute on retry. Any
// underlying write failure is remembered in err: it means the client
// saw at most a prefix of the body, so what was recorded must never be
// committed as a complete outcome.
type recordingWriter struct {
	http.ResponseWriter
	status   int
	body     []byte
	maxBody  int
	overflow bool
	err      error
}

func (rw *recordingWriter) WriteHeader(code int) {
	if rw.status == 0 {
		rw.status = code
	}
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recordingWriter) Write(p []byte) (int, error) {
	if rw.status == 0 {
		rw.status = http.StatusOK
	}
	if !rw.overflow {
		if len(rw.body)+len(p) > rw.maxBody {
			rw.overflow = true
			rw.body = nil
		} else {
			rw.body = append(rw.body, p...)
		}
	}
	n, err := rw.ResponseWriter.Write(p)
	if err != nil && rw.err == nil {
		rw.err = err
	}
	return n, err
}

// Flush keeps NDJSON streaming working through the recorder.
func (rw *recordingWriter) Flush() {
	if f, ok := rw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// EnableFullDuplex is forwarded via ResponseController's Unwrap path.
func (rw *recordingWriter) Unwrap() http.ResponseWriter { return rw.ResponseWriter }

// idempotent wraps a handler with key-based deduplication. Requests
// without a key pass straight through. Duplicates of an in-flight
// request wait for the original (singleflight); duplicates of a
// committed outcome replay it byte-identically with IdemReplayedHeader
// set, never touching admission or compute.
func (s *Service) idempotent(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get(IdemHeader)
		if key == "" || s.idem == nil {
			h(w, r)
			return
		}
		for {
			entry, leader := s.idem.begin(key)
			if leader {
				rw := &recordingWriter{ResponseWriter: w, maxBody: s.idem.maxBody}
				committed := false
				// Runs on panic too: net/http recovers handler panics
				// per-connection, and without this abort the entry's done
				// channel would never close — every later request with the
				// key would block until its own deadline, poisoning the key
				// until restart.
				defer func() {
					if !committed {
						s.idem.abort(key)
					}
				}()
				h(rw, r)
				if rw.status == 0 {
					rw.status = http.StatusOK
				}
				// A failed underlying write or a disconnected client means
				// the recorded body may be a torn prefix (a streaming
				// handler stops mid-NDJSON when emit fails) even though the
				// status was already 200. Committing it would replay the
				// truncation as a complete response; aborting lets the
				// retry recompute via the memo cache instead.
				if storable(rw.status) && !rw.overflow && rw.err == nil && r.Context().Err() == nil {
					s.idem.commit(key, &storedResponse{
						status: rw.status,
						jobID:  rw.Header().Get("X-Mct-Job"),
						ctype:  rw.Header().Get("Content-Type"),
						body:   rw.body,
					})
					committed = true
				}
				return
			}
			s.idem.inflight.Add(1)
			resp, err := entry.wait(r.Context())
			if err != nil {
				writeErr(w, err)
				return
			}
			if resp == nil {
				// The leader's outcome was retryable; this duplicate takes
				// over as leader on the next loop.
				continue
			}
			s.idem.replayed.Add(1)
			if resp.ctype != "" {
				w.Header().Set("Content-Type", resp.ctype)
			}
			if resp.jobID != "" {
				w.Header().Set("X-Mct-Job", resp.jobID)
			}
			w.Header().Set(IdemReplayedHeader, "1")
			w.WriteHeader(resp.status)
			_, _ = w.Write(resp.body)
			return
		}
	}
}
