package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrOverloaded marks a request shed by the brownout controller.
// statusFor maps it to 503; responses carry Retry-After.
var ErrOverloaded = errors.New("service: overloaded, shedding load")

// Brownout levels, in shedding order. Each level sheds everything the
// previous one does plus one more class; /healthz and /metrics are
// never shed at any level (an overloaded instance must stay observable,
// or nobody can tell it is shedding on purpose).
const (
	// brownNormal: everything served.
	brownNormal int32 = iota
	// brownShedStream: streaming endpoints shed (trace-upload classify,
	// GET /v1/trace) — the largest per-request cost, dropped first.
	brownShedStream
	// brownShedLowPri: plus requests not marked X-Mct-Priority: high.
	brownShedLowPri
	// brownBreakerOpen: circuit open — every API request shed.
	brownBreakerOpen
)

func brownoutLevelName(l int32) string {
	switch l {
	case brownNormal:
		return "normal"
	case brownShedStream:
		return "shed-streaming"
	case brownShedLowPri:
		return "shed-low-priority"
	default:
		return "breaker-open"
	}
}

// PriorityHeader lets clients mark requests that survive brownout level
// 2 ("high"); anything else is low priority.
const PriorityHeader = "X-Mct-Priority"

// BrownoutConfig shapes the overload ladder.
type BrownoutConfig struct {
	// Enabled arms the controller; off, no request is ever shed.
	Enabled bool
	// Interval is the evaluation tick. Default 250ms.
	Interval time.Duration
	// AdmitWaitP99 is the overload threshold on the windowed p99 of the
	// admission-wait histogram (time requests spend blocked at the front
	// door). Default 50ms.
	AdmitWaitP99 time.Duration
	// WaiterFrac is the fraction of the waiting room that, when
	// occupied, also signals overload. Default 0.5.
	WaiterFrac float64
	// TripTicks consecutive overloaded ticks escalate one level;
	// ClearTicks consecutive healthy ticks de-escalate one. The
	// asymmetry is the hysteresis: trip fast, clear slow. Defaults 2/4.
	TripTicks, ClearTicks int
	// RetryAfter is the hint sent with shed responses. Default 1s.
	RetryAfter time.Duration
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.AdmitWaitP99 <= 0 {
		c.AdmitWaitP99 = 50 * time.Millisecond
	}
	if c.WaiterFrac <= 0 {
		c.WaiterFrac = 0.5
	}
	if c.TripTicks <= 0 {
		c.TripTicks = 2
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = 4
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// brownout is the degradation-ladder controller: a periodic tick reads
// windowed load signals (admission-wait histogram deltas, waiting-room
// occupancy) and walks the level up or down with hysteresis. The
// request path only ever reads one atomic.
type brownout struct {
	cfg    BrownoutConfig
	svc    *Service
	level  atomic.Int32
	bounds []float64 // admission histogram bucket bounds

	mu        sync.Mutex
	prevSnap  []uint64
	overStrk  int
	underStrk int

	transitions counter
	sheds       counter

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newBrownout(s *Service, cfg BrownoutConfig) *brownout {
	return &brownout{cfg: cfg.withDefaults(), svc: s, bounds: obs.LatencyBuckets, stop: make(chan struct{})}
}

// run starts the evaluation ticker (only when enabled).
func (b *brownout) run() {
	if !b.cfg.Enabled {
		return
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		t := time.NewTicker(b.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				b.observe(b.overloaded())
			case <-b.stop:
				return
			}
		}
	}()
}

func (b *brownout) close() {
	b.stopOnce.Do(func() { close(b.stop) })
	b.wg.Wait()
}

// overloaded reads this tick's load signals: the windowed p99 of
// admission wait (bucket-count deltas since the previous tick — the
// cumulative histogram can never "recover", the window can) and the
// waiting-room occupancy, which is instantaneous.
func (b *brownout) overloaded() bool {
	snap := b.svc.hAdmit.Snapshot()
	b.mu.Lock()
	prev := b.prevSnap
	b.prevSnap = snap
	b.mu.Unlock()
	window := make([]uint64, len(snap))
	for i := range snap {
		window[i] = snap[i]
		if prev != nil && i < len(prev) {
			window[i] -= prev[i]
		}
	}
	if p99 := bucketQuantile(b.bounds, window, 0.99); p99 > b.cfg.AdmitWaitP99.Seconds() {
		return true
	}
	if b.svc.cfg.MaxWaiters > 0 &&
		float64(b.svc.adm.Waiters()) >= b.cfg.WaiterFrac*float64(b.svc.cfg.MaxWaiters) {
		return true
	}
	return false
}

// observe feeds one tick's verdict into the hysteresis ladder. Exposed
// separately from the ticker so tests drive it deterministically.
func (b *brownout) observe(over bool) {
	b.mu.Lock()
	if over {
		b.overStrk++
		b.underStrk = 0
	} else {
		b.underStrk++
		b.overStrk = 0
	}
	delta := int32(0)
	if b.overStrk >= b.cfg.TripTicks {
		b.overStrk = 0
		delta = 1
	} else if b.underStrk >= b.cfg.ClearTicks {
		b.underStrk = 0
		delta = -1
	}
	b.mu.Unlock()
	if delta == 0 {
		return
	}
	for {
		cur := b.level.Load()
		next := cur + delta
		if next < brownNormal {
			next = brownNormal
		}
		if next > brownBreakerOpen {
			next = brownBreakerOpen
		}
		if next == cur {
			return
		}
		if b.level.CompareAndSwap(cur, next) {
			b.transitions.Add(1)
			// The transition is a span in the trace ring: `mctd` operators
			// see level changes next to the requests they shed.
			_, sp := obs.Start(obs.Inject(context.Background(), b.svc.ring, "brownout"), "brownout.transition")
			sp.Str("from", brownoutLevelName(cur))
			sp.Str("to", brownoutLevelName(next))
			sp.End()
			if b.svc.logf != nil {
				b.svc.logf("service: brownout %s -> %s", brownoutLevelName(cur), brownoutLevelName(next))
			}
			return
		}
	}
}

// Level returns the current ladder position.
func (b *brownout) Level() int32 { return b.level.Load() }

// allow decides one request's fate. streaming marks the
// high-cost streaming class (upload classify, trace dumps).
func (b *brownout) allow(r *http.Request, streaming bool) error {
	if b == nil || !b.cfg.Enabled {
		return nil
	}
	l := b.level.Load()
	shed := false
	switch {
	case l >= brownBreakerOpen:
		shed = true
	case l >= brownShedLowPri:
		shed = streaming || r.Header.Get(PriorityHeader) != "high"
	case l >= brownShedStream:
		shed = streaming
	}
	if !shed {
		return nil
	}
	b.sheds.Add(1)
	return fmt.Errorf("%w (level %s)", ErrOverloaded, brownoutLevelName(l))
}

// shed enforces the brownout decision at a handler's front door:
// returns true after writing the 503 (with Retry-After) if the request
// was shed.
func (s *Service) shed(w http.ResponseWriter, r *http.Request, streaming bool) bool {
	err := s.brown.allow(r, streaming)
	if err == nil {
		return false
	}
	w.Header().Set("Retry-After", retryAfterValue(s.brown.cfg.RetryAfter))
	writeErr(w, err)
	return true
}

// bucketQuantile estimates a quantile from non-cumulative bucket counts
// over the given bounds (same interpolation as obs.Histogram.Quantile,
// but over a caller-supplied window instead of the cumulative counts).
func bucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			if i >= len(bounds) {
				return lower // +Inf bucket
			}
			upper := bounds[i]
			if c == 0 {
				return upper
			}
			frac := (rank - float64(prev)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + frac*(upper-lower)
		}
	}
	return bounds[len(bounds)-1]
}
