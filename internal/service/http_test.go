package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/workload"
)

// newTestService boots an in-process service over httptest with a fresh
// cache directory, and tears both down with the test.
func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir() + "/cache"
	}
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = t.TempDir() + "/ckpt"
	}
	s := New(cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, srv
}

func anyWorkload(t *testing.T) string {
	t.Helper()
	names := workload.Names()
	if len(names) == 0 {
		t.Fatal("no workloads registered")
	}
	return names[0]
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, r io.Reader) []byte {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClassifySpecStreamsNDJSON(t *testing.T) {
	_, srv := newTestService(t, Config{})
	w := anyWorkload(t)

	resp := postJSON(t, srv.URL+"/v1/classify",
		fmt.Sprintf(`{"workload":%q,"accesses":20000,"size_kb":8,"assoc":2}`, w))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp.Body))
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	jobID := resp.Header.Get("X-Mct-Job")
	if jobID == "" {
		t.Error("X-Mct-Job header missing")
	}

	lines := bytes.Split(bytes.TrimSpace(readAll(t, resp.Body)), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("got %d lines, want miss records plus a summary", len(lines))
	}
	// Every line but the last is an access record of a miss.
	var rec accessLine
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("first line is not an access record: %v\n%s", err, lines[0])
	}
	if rec.Hit || rec.Oracle == "" || rec.MCT == "" {
		t.Errorf("miss record incomplete: %+v", rec)
	}
	// The last line is the summary.
	var tail struct {
		Summary *ClassifySummary `json:"summary"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &tail); err != nil || tail.Summary == nil {
		t.Fatalf("last line is not a summary: %v\n%s", err, lines[len(lines)-1])
	}
	if tail.Summary.Accesses != 20000 {
		t.Errorf("summary accesses = %d, want 20000", tail.Summary.Accesses)
	}
	if tail.Summary.Misses != uint64(len(lines)-1) {
		t.Errorf("summary misses = %d but %d miss lines streamed", tail.Summary.Misses, len(lines)-1)
	}
	if tail.Summary.OverallAcc <= 0 || tail.Summary.OverallAcc > 1 {
		t.Errorf("overall accuracy = %v, want (0,1]", tail.Summary.OverallAcc)
	}

	// The job registry saw it all.
	jr := postJSONGet(t, srv.URL+"/v1/jobs/"+jobID)
	defer jr.Body.Close()
	var job Job
	if err := json.NewDecoder(jr.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.State != JobDone {
		t.Errorf("job state = %s, want done", job.State)
	}
	if job.Records != 20000 || job.CacheMisses != 1 || job.CacheHits != 0 {
		t.Errorf("job accounting = records %d hits %d misses %d, want 20000/0/1",
			job.Records, job.CacheHits, job.CacheMisses)
	}
}

func postJSONGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return resp
}

// TestClassifyColdWarmByteIdentical is the acceptance criterion: the
// NDJSON body of a cache-warm classify is byte-identical to the cold one.
func TestClassifyColdWarmByteIdentical(t *testing.T) {
	s, srv := newTestService(t, Config{})
	body := fmt.Sprintf(`{"workload":%q,"accesses":15000,"size_kb":8,"emit":"all"}`, anyWorkload(t))

	r1 := postJSON(t, srv.URL+"/v1/classify", body)
	cold := readAll(t, r1.Body)
	r1.Body.Close()
	job1 := r1.Header.Get("X-Mct-Job")

	r2 := postJSON(t, srv.URL+"/v1/classify", body)
	warm := readAll(t, r2.Body)
	r2.Body.Close()
	job2 := r2.Header.Get("X-Mct-Job")

	if !bytes.Equal(cold, warm) {
		t.Error("cache-warm classify body differs from cold body")
	}
	if job1 == job2 {
		t.Error("distinct requests shared a job ID")
	}
	var j1, j2 Job
	decodeJob(t, srv.URL, job1, &j1)
	decodeJob(t, srv.URL, job2, &j2)
	if j1.CacheMisses != 1 || j1.CacheHits != 0 {
		t.Errorf("cold job: hits %d misses %d, want 0/1", j1.CacheHits, j1.CacheMisses)
	}
	if j2.CacheHits != 1 || j2.CacheMisses != 0 {
		t.Errorf("warm job: hits %d misses %d, want 1/0", j2.CacheHits, j2.CacheMisses)
	}
	if hits, _ := s.Cache().Stats(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

func decodeJob(t *testing.T, base, id string, into *Job) {
	t.Helper()
	resp := postJSONGet(t, base+"/v1/jobs/"+id)
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func TestSweepColdWarmByteIdentical(t *testing.T) {
	_, srv := newTestService(t, Config{})
	body := `{"experiments":["fig2"],"accesses":20000,"instructions":20000}`

	r1 := postJSON(t, srv.URL+"/v1/sweep", body)
	cold := readAll(t, r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", r1.StatusCode, cold)
	}

	r2 := postJSON(t, srv.URL+"/v1/sweep", body)
	warm := readAll(t, r2.Body)
	r2.Body.Close()

	if !bytes.Equal(cold, warm) {
		t.Errorf("cache-warm sweep body differs from cold body:\ncold: %s\nwarm: %s", cold, warm)
	}

	lines := bytes.Split(bytes.TrimSpace(cold), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want experiment + summary", len(lines))
	}
	var ln sweepLine
	if err := json.Unmarshal(lines[0], &ln); err != nil || ln.Experiment != "fig2" || len(ln.Result) == 0 {
		t.Fatalf("experiment line: %v\n%s", err, lines[0])
	}
	var tail struct {
		Summary *sweepSummary `json:"summary"`
	}
	if err := json.Unmarshal(lines[1], &tail); err != nil || tail.Summary == nil {
		t.Fatalf("summary line: %v\n%s", err, lines[1])
	}
	if tail.Summary.OK != 1 || tail.Summary.Failed != 0 {
		t.Errorf("summary = %+v, want 1 ok, 0 failed", *tail.Summary)
	}

	var j2 Job
	decodeJob(t, srv.URL, r2.Header.Get("X-Mct-Job"), &j2)
	if j2.CacheHits != 1 || j2.CacheMisses != 0 {
		t.Errorf("warm sweep job: hits %d misses %d, want 1/0", j2.CacheHits, j2.CacheMisses)
	}
}

func TestSweepRejectsUnknownExperiment(t *testing.T) {
	_, srv := newTestService(t, Config{})
	resp := postJSON(t, srv.URL+"/v1/sweep", `{"experiments":["fig2","fig99"]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	body := string(readAll(t, resp.Body))
	if !strings.Contains(body, "fig99") || !strings.Contains(body, "valid:") || !strings.Contains(body, "fig1") {
		t.Errorf("rejection must name the typo and the valid selections: %s", body)
	}
}

func TestClassifyRejectsBadSpecs(t *testing.T) {
	_, srv := newTestService(t, Config{MaxSpecAccesses: 1000})
	for name, body := range map[string]string{
		"unknown workload": `{"workload":"nope"}`,
		"bad emit":         fmt.Sprintf(`{"workload":%q,"emit":"everything"}`, anyWorkload(t)),
		"bad geometry":     fmt.Sprintf(`{"workload":%q,"size_kb":3,"line":48}`, anyWorkload(t)),
		"over accesses":    fmt.Sprintf(`{"workload":%q,"accesses":5000}`, anyWorkload(t)),
		"unknown field":    `{"wrkload":"typo"}`,
	} {
		resp := postJSON(t, srv.URL+"/v1/classify", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// buildTrace encodes n alternating load/store records across strided
// addresses, returning the MCTR bytes.
func buildTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, uint64(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		op := trace.Load
		if i%2 == 1 {
			op = trace.Store
		}
		if err := tw.Write(trace.Instr{PC: 0x1000, Addr: mem.Addr(i * 64), Op: op}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestClassifyUploadStreams(t *testing.T) {
	_, srv := newTestService(t, Config{})
	raw := buildTrace(t, 500)

	resp, err := http.Post(srv.URL+"/v1/classify?size_kb=8&assoc=2&emit=all", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp.Body))
	}
	lines := bytes.Split(bytes.TrimSpace(readAll(t, resp.Body)), []byte("\n"))
	if len(lines) != 501 { // 500 access records + summary
		t.Fatalf("got %d lines, want 501", len(lines))
	}
	var tail struct {
		Summary *ClassifySummary `json:"summary"`
	}
	if err := json.Unmarshal(lines[500], &tail); err != nil || tail.Summary == nil {
		t.Fatalf("missing summary: %v", err)
	}
	if tail.Summary.Accesses != 500 {
		t.Errorf("accesses = %d, want 500", tail.Summary.Accesses)
	}

	var job Job
	decodeJob(t, srv.URL, resp.Header.Get("X-Mct-Job"), &job)
	if job.State != JobDone || job.Records != 500 {
		t.Errorf("job = %s/%d records, want done/500", job.State, job.Records)
	}
}

func TestClassifyUploadTooLarge(t *testing.T) {
	_, srv := newTestService(t, Config{Limits: trace.Limits{MaxRecords: 100}})
	raw := buildTrace(t, 200) // header declares 200 > limit 100

	resp, err := http.Post(srv.URL+"/v1/classify", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var job Job
	decodeJob(t, srv.URL, resp.Header.Get("X-Mct-Job"), &job)
	if job.State != JobFailed {
		t.Errorf("job state = %s, want failed", job.State)
	}
}

func TestClassifyUploadBadMagic(t *testing.T) {
	_, srv := newTestService(t, Config{})
	resp, err := http.Post(srv.URL+"/v1/classify", "application/octet-stream",
		strings.NewReader("this is not a trace, not even close"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestAdmissionOverflowHTTP holds the single capacity slot open with a
// withheld upload body, then shows the next request bouncing with 429.
func TestAdmissionOverflowHTTP(t *testing.T) {
	_, srv := newTestService(t, Config{Capacity: 1, MaxWaiters: -1, AdmitWait: time.Millisecond})

	pr, pw := io.Pipe()
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/classify", "application/octet-stream", pr)
		if resp != nil {
			resp.Body.Close()
		}
		inflight <- err
	}()

	// Wait until the upload holds the slot (the handler blocks reading the
	// trace header it will never get until we release the pipe).
	waitInflight(t, srv.URL, 1)

	resp := postJSON(t, srv.URL+"/v1/classify", `{"workload":"x"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	// Release the held request with a complete tiny trace.
	go func() {
		raw := buildTrace(t, 4)
		pw.Write(raw)
		pw.Close()
	}()
	if err := <-inflight; err != nil {
		t.Fatalf("held upload failed: %v", err)
	}
}

// waitInflight polls /metrics until queue_inflight reaches n.
func waitInflight(t *testing.T, base string, n float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m := scrapeMetrics(t, base)
		if m["queue_inflight"] >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("queue_inflight never reached %v", n)
}

func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics is not flat JSON numbers: %v", err)
	}
	return m
}

func TestHealthzAndDrain(t *testing.T) {
	s, srv := newTestService(t, Config{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	s.StartDrain()
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp2.StatusCode)
	}

	resp3 := postJSON(t, srv.URL+"/v1/classify", `{"workload":"x"}`)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("classify while draining = %d, want 503", resp3.StatusCode)
	}

	m := scrapeMetrics(t, srv.URL)
	if m["draining"] != 1 || m["jobs_rejected_drain"] < 1 {
		t.Errorf("metrics = draining %v, rejected_drain %v", m["draining"], m["jobs_rejected_drain"])
	}
}

// TestMetricsServedWhileDraining pins that observability never sits
// behind the admission gate: with the drain gate shut (new work 503s),
// GET /metrics — both the JSON map and the Prometheus exposition — must
// still answer 200. A draining instance that goes dark is exactly the
// instance operators most need to watch.
func TestMetricsServedWhileDraining(t *testing.T) {
	s, srv := newTestService(t, Config{})
	s.StartDrain()

	reject := postJSON(t, srv.URL+"/v1/classify", `{"workload":"x"}`)
	reject.Body.Close()
	if reject.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("classify while draining = %d, want 503 (gate not shut?)", reject.StatusCode)
	}

	m := scrapeMetrics(t, srv.URL) // fails the test on any non-200 / non-JSON
	if m["draining"] != 1 {
		t.Errorf("draining gauge = %v, want 1", m["draining"])
	}
	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus metrics while draining = %d, want 200", resp.StatusCode)
	}
	body := string(readAll(t, resp.Body))
	if !strings.Contains(body, "mct_draining 1\n") {
		t.Errorf("exposition missing mct_draining 1:\n%s", body)
	}
}

func TestJobNotFound(t *testing.T) {
	_, srv := newTestService(t, Config{})
	resp, err := http.Get(srv.URL + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestStatusForMapping pins the full error → HTTP status taxonomy,
// including errors buried inside the runner's MultiError/TaskError
// wrappers — the property satellite 2's multi-branch Unwrap exists for.
func TestStatusForMapping(t *testing.T) {
	deep := func(err error) error {
		return &runner.MultiError{
			Failures: []*runner.TaskError{{Label: "cell", Index: 1, Attempts: 2, Err: fmt.Errorf("wrapped: %w", err)}},
			Total:    3,
		}
	}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"too large", trace.ErrTraceTooLarge, http.StatusRequestEntityTooLarge},
		{"too large in multierror", deep(trace.ErrTraceTooLarge), http.StatusRequestEntityTooLarge},
		{"busy", ErrBusy, http.StatusTooManyRequests},
		{"client busy", ErrClientBusy, http.StatusTooManyRequests},
		{"draining", ErrDraining, http.StatusServiceUnavailable},
		{"bad request", fmt.Errorf("%w: nope", ErrBadRequest), http.StatusBadRequest},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"deadline in multierror", deep(context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"canceled", context.Canceled, 499},
		{"unknown", errors.New("boom"), http.StatusInternalServerError},
		{"unknown in multierror", deep(errors.New("boom")), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}
