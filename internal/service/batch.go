package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// classifyArtifact is the memoized product of a spec-path classification:
// the complete, pre-rendered NDJSON response body plus its work counts.
// Caching the rendered bytes (rather than re-rendering on hit) makes the
// cold-vs-warm byte-identity property trivially true: runner.Memo
// round-trips the artifact through JSON either way, so the handler writes
// literally the same bytes whether the result was computed or replayed.
type classifyArtifact struct {
	Body    []byte        `json:"body"`
	Stats   classifyStats `json:"stats"`
	Summary bool          `json:"summary"`
}

// batchResult is what a batch delivers back to one waiting request.
type batchResult struct {
	art classifyArtifact
	hit bool // memoization-cache hit
	err error
}

// batchItem is one classify request waiting in the batcher. done is
// buffered (capacity 1) so delivery never blocks on a caller that
// abandoned the request.
type batchItem struct {
	ctx  context.Context
	spec ClassifySpec
	done chan batchResult
}

// batcher coalesces admitted classify requests into groups of up to size
// (or whatever arrives within wait of the first), then hands each group
// to run as one unit — the service's "admission → batch → supervise"
// stage. Batching amortizes the worker-pool fan-out across concurrent
// requests instead of spawning one pool invocation per request.
type batcher struct {
	in   chan *batchItem
	size int
	wait time.Duration
	run  func([]*batchItem)

	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup
}

func newBatcher(size int, wait time.Duration, run func([]*batchItem)) *batcher {
	if size < 1 {
		size = 1
	}
	if wait <= 0 {
		wait = time.Millisecond
	}
	b := &batcher{in: make(chan *batchItem), size: size, wait: wait, run: run, quit: make(chan struct{})}
	b.wg.Add(1)
	go b.loop()
	return b
}

// submit enqueues one request and returns its delivery channel. It fails
// with ErrDraining once the batcher has stopped, and with ctx's error if
// the caller gives up first.
func (b *batcher) submit(ctx context.Context, spec ClassifySpec) (<-chan batchResult, error) {
	it := &batchItem{ctx: ctx, spec: spec, done: make(chan batchResult, 1)}
	select {
	case b.in <- it:
		return it.done, nil
	case <-b.quit:
		return nil, ErrDraining
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// stop shuts the intake and waits for in-flight batches to finish. Call
// only after admission has drained: with no admitted requests left there
// are no submitters to strand. Idempotent, so Drain may run more than
// once (a signal-driven drain racing a deferred one).
func (b *batcher) stop() {
	b.quitOnce.Do(func() { close(b.quit) })
	b.wg.Wait()
}

// loop collects batches: the first item opens a batch, then up to
// size-1 more may join within wait. Each full batch executes on its own
// goroutine so collection never stalls behind execution.
func (b *batcher) loop() {
	defer b.wg.Done()
	for {
		var first *batchItem
		select {
		case first = <-b.in:
		case <-b.quit:
			return
		}
		batch := []*batchItem{first}
		timer := time.NewTimer(b.wait)
	collect:
		for len(batch) < b.size {
			select {
			case it := <-b.in:
				batch = append(batch, it)
			case <-timer.C:
				break collect
			case <-b.quit:
				break collect
			}
		}
		timer.Stop()
		b.wg.Add(1)
		go func(items []*batchItem) {
			defer b.wg.Done()
			b.run(items)
		}(batch)
	}
}

// runBatch executes one batch through the runner's supervised worker
// pool and delivers each item's result on its channel. The pool context
// carries the service's job-scoped supervision options (WithOptions)
// and is detached from any single request: one canceled request must
// not take its batchmates down. Per-request cancellation instead
// reaches into each task through the item's own context.
func (s *Service) runBatch(items []*batchItem) {
	s.hBatch.Observe(float64(len(items)))
	ctx := runner.WithOptions(context.Background(), s.supervision()...)
	// The batch runs detached from any one request, so its spans live
	// under the shared "batch" trace; per-item cache-lookup spans ride
	// each item's own context and land under that item's job trace.
	ctx, sp := obs.Start(obs.Inject(ctx, s.ring, "batch"), "service.batch")
	sp.Int("size", int64(len(items)))
	defer sp.End()
	tasks := make([]runner.Task[batchResult], len(items))
	for i, it := range items {
		it := it
		tasks[i] = runner.NewTask("classify/"+it.spec.Workload, func(context.Context) (batchResult, error) {
			art, hit, err := s.classifyMemo(it.ctx, it.spec)
			return batchResult{art: art, hit: hit}, err
		})
	}
	results, err := runner.Map(ctx, tasks, runner.PartialResults())
	failed := map[int]error{}
	var me *runner.MultiError
	if errors.As(err, &me) {
		for _, f := range me.Failures {
			failed[f.Index] = f
		}
	} else if err != nil {
		for i := range items {
			failed[i] = err
		}
	}
	for i, it := range items {
		var res batchResult
		if i < len(results) {
			res = results[i]
		}
		if ferr, ok := failed[i]; ok {
			res = batchResult{err: ferr}
		}
		it.done <- res // buffered: never blocks
	}
}

// classifyMemo computes (or replays) one spec-path classification
// through the cell path: local memo cache, then — clustered — the hash
// ring (a remote-owned spec forwards to its owner; see cluster.go). The
// rendered NDJSON body is the cached value; see classifyArtifact for
// why, and classifyRaw (cluster.go) for the compute itself.
func (s *Service) classifyMemo(ctx context.Context, spec ClassifySpec) (classifyArtifact, bool, error) {
	_, sp := obs.Start(ctx, "cache.lookup")
	sp.Str("workload", spec.Workload)
	raw, hit, err := s.memoCell(ctx, classifySlug, spec, func() (json.RawMessage, error) {
		return s.classifyRaw(ctx, spec)
	})
	sp.Bool("hit", hit)
	sp.Err(err)
	sp.End()
	if err != nil {
		return classifyArtifact{}, hit, err
	}
	var art classifyArtifact
	if uerr := json.Unmarshal(raw, &art); uerr != nil {
		return classifyArtifact{}, hit, fmt.Errorf("service: decoding classify artifact: %w", uerr)
	}
	return art, hit, nil
}

// classifySlug keys spec-path classifications in the memo cache.
const classifySlug = "svc-classify"
