package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	// JobQueued: admitted, waiting for execution (in a classify batch or
	// behind the worker pool).
	JobQueued JobState = "queued"
	// JobRunning: executing.
	JobRunning JobState = "running"
	// JobDone: completed successfully.
	JobDone JobState = "done"
	// JobFailed: completed with an error (Failures carries the details).
	JobFailed JobState = "failed"
	// JobCanceled: the client went away (or the deadline passed) before
	// the job finished.
	JobCanceled JobState = "canceled"
)

// Failure is one task failure inside a job, extracted from the runner's
// MultiError/TaskError structure so API clients see which cells of a
// sweep failed, after how many attempts, without parsing error strings.
type Failure struct {
	Index    int    `json:"index"`
	Label    string `json:"label,omitempty"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// Job is the service's unit of work: one classify or sweep request. The
// struct is the JSON shape served by GET /v1/jobs/{id}; all fields are
// snapshots guarded by the registry's lock.
type Job struct {
	ID     string   `json:"id"`
	Kind   string   `json:"kind"` // "classify" | "sweep"
	Client string   `json:"client"`
	State  JobState `json:"state"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// Error and Failures describe how a failed job failed; Attempts is
	// the supervision layer's attempt count for the primary failure.
	Error    string    `json:"error,omitempty"`
	Failures []Failure `json:"failures,omitempty"`
	Attempts int       `json:"attempts,omitempty"`

	// CacheHits/CacheMisses count memoization-cache traffic attributable
	// to this job (approximate under concurrency: the counters are
	// process-wide deltas sampled around the job's execution).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`

	// Records counts trace records the job processed; Emitted counts
	// NDJSON result lines streamed back.
	Records uint64 `json:"records"`
	Emitted uint64 `json:"emitted"`

	// IdemKey is the client's idempotency key, when one was sent — the
	// handle the journal dedupes retries against.
	IdemKey string `json:"idem_key,omitempty"`
	// Recovered marks a job restored (and possibly re-driven) from the
	// journal after a restart rather than created by a live request.
	Recovered bool `json:"recovered,omitempty"`
}

// failuresOf flattens a runner error into the API's failure list using
// the multi-Unwrap structure (errors.As), never string parsing.
func failuresOf(err error) ([]Failure, int) {
	var me *runner.MultiError
	if errors.As(err, &me) {
		out := make([]Failure, 0, len(me.Failures))
		attempts := 0
		for _, f := range me.Failures {
			out = append(out, Failure{Index: f.Index, Label: f.Label, Attempts: f.Attempts, Error: f.Err.Error()})
			if f.Attempts > attempts {
				attempts = f.Attempts
			}
		}
		return out, attempts
	}
	var te *runner.TaskError
	if errors.As(err, &te) {
		return []Failure{{Index: te.Index, Label: te.Label, Attempts: te.Attempts, Error: te.Err.Error()}}, te.Attempts
	}
	return nil, 0
}

// jobs is the bounded in-memory job registry: a map for lookup plus a
// FIFO ring of IDs so the oldest finished jobs are evicted once maxJobs
// is exceeded — observability never becomes a leak.
type jobs struct {
	mu      sync.Mutex
	byID    map[string]*Job
	order   []string
	maxJobs int

	prefix string
	seq    atomic.Uint64
}

func newJobs(maxJobs int) *jobs {
	if maxJobs < 1 {
		maxJobs = 1
	}
	var b [4]byte
	_, _ = rand.Read(b[:])
	return &jobs{
		byID:    map[string]*Job{},
		maxJobs: maxJobs,
		prefix:  hex.EncodeToString(b[:]),
	}
}

// NewID allocates a job ID without registering anything — the handlers
// need the ID before admission so admission-wait spans carry the job's
// trace, but only admitted requests become registered jobs.
func (js *jobs) NewID() string {
	return fmt.Sprintf("%s-%06d", js.prefix, js.seq.Add(1))
}

// Create registers a new queued job and returns its ID.
func (js *jobs) Create(kind, client string) string {
	id := js.NewID()
	js.CreateWithID(id, kind, client)
	return id
}

// CreateWithID registers a new queued job under a pre-allocated ID.
func (js *jobs) CreateWithID(id, kind, client string) {
	j := &Job{ID: id, Kind: kind, Client: client, State: JobQueued, Created: time.Now()}
	js.mu.Lock()
	defer js.mu.Unlock()
	js.byID[id] = j
	js.order = append(js.order, id)
	for len(js.order) > js.maxJobs {
		delete(js.byID, js.order[0])
		js.order = js.order[1:]
	}
}

// Restore registers a job rebuilt from the journal, preserving its
// journaled state (recovery's path into the registry; live requests go
// through CreateWithID).
func (js *jobs) Restore(j Job) {
	cp := j
	js.mu.Lock()
	defer js.mu.Unlock()
	if _, exists := js.byID[j.ID]; !exists {
		js.order = append(js.order, j.ID)
	}
	js.byID[j.ID] = &cp
	for len(js.order) > js.maxJobs {
		delete(js.byID, js.order[0])
		js.order = js.order[1:]
	}
}

// Get returns a snapshot of the job, or false if unknown (or evicted).
func (js *jobs) Get(id string) (Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.byID[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// update mutates a live job under the lock; a no-op for evicted jobs.
func (js *jobs) update(id string, f func(*Job)) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if j, ok := js.byID[id]; ok {
		f(j)
	}
}

// Start marks the job running.
func (js *jobs) Start(id string) {
	now := time.Now()
	js.update(id, func(j *Job) {
		j.State = JobRunning
		j.Started = &now
	})
}

// Finish records the job's outcome from its final error: nil is done,
// cancellation is canceled, anything else is failed with the runner's
// failure structure flattened into the API shape.
func (js *jobs) Finish(id string, err error, records, emitted, hits, misses uint64) {
	now := time.Now()
	js.update(id, func(j *Job) {
		j.Finished = &now
		j.Records = records
		j.Emitted = emitted
		j.CacheHits = hits
		j.CacheMisses = misses
		switch {
		case err == nil:
			j.State = JobDone
		case errors.Is(err, context.Canceled):
			j.State = JobCanceled
			j.Error = err.Error()
		default:
			j.State = JobFailed
			j.Error = err.Error()
			j.Failures, j.Attempts = failuresOf(err)
		}
	})
}
