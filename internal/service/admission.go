package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Admission errors. HTTP handlers map these to status codes (statusFor):
// capacity and fairness rejections are 429 (the client should back off
// and retry), draining is 503 (the process is going away; retry against
// another instance).
var (
	// ErrBusy reports that the service is at capacity and the bounded
	// waiter queue is also full — the backpressure signal.
	ErrBusy = errors.New("service: at capacity, try again later")
	// ErrClientBusy reports that this client already holds its fair share
	// of in-flight requests; other clients' slots are protected from it.
	ErrClientBusy = errors.New("service: per-client in-flight limit reached")
	// ErrDraining reports that the service is shutting down and admits no
	// new work.
	ErrDraining = errors.New("service: draining, not accepting new work")
)

// admission is the bounded front door: at most capacity requests are
// in-flight at once, at most maxWaiters more may block waiting for a
// slot (briefly — admitWait bounds the wait), and no single client may
// hold more than perClient slots. Everything beyond those bounds is
// rejected immediately, so memory stays proportional to the configured
// capacity no matter the offered load.
type admission struct {
	sem        chan struct{} // buffered to capacity; send = acquire
	admitWait  time.Duration
	perClient  int
	maxWaiters int

	mu       sync.Mutex
	byClient map[string]int
	waiters  int
	peak     int // high-water mark of concurrently admitted requests

	draining atomic.Bool
	inflight atomic.Int64

	// Counters for /metrics.
	accepted       atomic.Uint64
	rejectedFull   atomic.Uint64
	rejectedClient atomic.Uint64
	rejectedDrain  atomic.Uint64
}

func newAdmission(capacity, maxWaiters, perClient int, admitWait time.Duration) *admission {
	if capacity < 1 {
		capacity = 1
	}
	if maxWaiters < 0 {
		maxWaiters = 0
	}
	if perClient <= 0 || perClient > capacity {
		perClient = capacity
	}
	return &admission{
		sem:        make(chan struct{}, capacity),
		admitWait:  admitWait,
		perClient:  perClient,
		maxWaiters: maxWaiters,
		byClient:   map[string]int{},
	}
}

// Admit reserves an in-flight slot for client, blocking at most admitWait
// (and only if a bounded waiter slot is free). On success it returns a
// release function that MUST be called exactly once when the request
// finishes. On failure it returns ErrBusy, ErrClientBusy, ErrDraining, or
// ctx's error.
func (a *admission) Admit(ctx context.Context, client string) (release func(), err error) {
	if a.draining.Load() {
		a.rejectedDrain.Add(1)
		return nil, ErrDraining
	}

	// Reserve the client's fairness slot first: a client at its cap is
	// rejected without consuming a waiter slot, so one greedy client can
	// neither starve the pool nor clog the waiting room.
	a.mu.Lock()
	if a.byClient[client] >= a.perClient {
		a.mu.Unlock()
		a.rejectedClient.Add(1)
		return nil, ErrClientBusy
	}
	a.byClient[client]++
	a.mu.Unlock()

	admitErr := func(err error, counter *atomic.Uint64) (func(), error) {
		a.mu.Lock()
		a.decClientLocked(client)
		a.mu.Unlock()
		if counter != nil {
			counter.Add(1)
		}
		return nil, err
	}

	select {
	case a.sem <- struct{}{}:
	default:
		// No free slot: join the bounded waiting room, or bounce.
		a.mu.Lock()
		if a.waiters >= a.maxWaiters {
			a.mu.Unlock()
			return admitErr(ErrBusy, &a.rejectedFull)
		}
		a.waiters++
		a.mu.Unlock()
		wait := a.admitWait
		if wait <= 0 {
			wait = time.Millisecond
		}
		timer := time.NewTimer(wait)
		var werr error
		select {
		case a.sem <- struct{}{}:
		case <-timer.C:
			werr = ErrBusy
		case <-ctx.Done():
			werr = ctx.Err()
		}
		timer.Stop()
		a.mu.Lock()
		a.waiters--
		a.mu.Unlock()
		if werr != nil {
			if werr == ErrBusy {
				return admitErr(werr, &a.rejectedFull)
			}
			return admitErr(werr, nil)
		}
		// Admitted while draining flipped on: honor the slot (drain waits
		// for it) rather than racing a rejection.
	}

	a.accepted.Add(1)
	n := int(a.inflight.Add(1))
	a.mu.Lock()
	if n > a.peak {
		a.peak = n
	}
	a.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			a.inflight.Add(-1)
			a.mu.Lock()
			a.decClientLocked(client)
			a.mu.Unlock()
			<-a.sem
		})
	}, nil
}

// decClientLocked drops one of client's reservations. Caller holds a.mu.
func (a *admission) decClientLocked(client string) {
	if n := a.byClient[client]; n <= 1 {
		delete(a.byClient, client)
	} else {
		a.byClient[client] = n - 1
	}
}

// StartDrain flips the admission gate shut: every subsequent Admit is
// rejected with ErrDraining. Requests already admitted are unaffected.
func (a *admission) StartDrain() { a.draining.Store(true) }

// Draining reports whether the gate is shut.
func (a *admission) Draining() bool { return a.draining.Load() }

// AwaitIdle blocks until no requests are in-flight or ctx expires.
func (a *admission) AwaitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if a.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Inflight returns the number of currently admitted requests.
func (a *admission) Inflight() int { return int(a.inflight.Load()) }

// Peak returns the high-water mark of concurrently admitted requests.
func (a *admission) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Waiters returns how many requests are blocked waiting for a slot.
func (a *admission) Waiters() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiters
}
