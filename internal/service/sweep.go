package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
)

// SweepSpec is the body of POST /v1/sweep: which experiments to run at
// what scale. Validation is shared with cmd/paperbench's -experiment
// flag (experiments.ValidateSelection), so the service and the CLI
// accept exactly the same selections and reject typos with the same
// valid-name listing.
type SweepSpec struct {
	// Experiments selects artifacts by name ("all", "fig2", "table1", ...).
	Experiments []string `json:"experiments"`
	// Quick uses the reduced test-scale parameters.
	Quick bool `json:"quick,omitempty"`
	// Accesses/Instructions/Seed override individual parameters when
	// nonzero.
	Accesses     uint64 `json:"accesses,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
}

// normalize validates the selection and resolves the run parameters.
func (sp *SweepSpec) normalize() (experiments.Params, []experiments.Artifact, error) {
	if len(sp.Experiments) == 0 {
		sp.Experiments = []string{experiments.SelectAll}
	}
	if err := experiments.ValidateSelection(sp.Experiments); err != nil {
		return experiments.Params{}, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	arts, err := experiments.Select(sp.Experiments)
	if err != nil {
		return experiments.Params{}, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	p := experiments.Default()
	if sp.Quick {
		p = experiments.Quick()
	}
	if sp.Accesses != 0 {
		p.MemAccesses = sp.Accesses
	}
	if sp.Instructions != 0 {
		p.Instructions = sp.Instructions
	}
	if sp.Seed != 0 {
		p.Seed = sp.Seed
	}
	return p, arts, nil
}

// sweepLine is one NDJSON record of a sweep response: the artifact's
// result verbatim (the memo cache's raw JSON, so cold and warm runs are
// byte-identical) or its error.
type sweepLine struct {
	Experiment string          `json:"experiment"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// sweepSummary is the trailing NDJSON record.
type sweepSummary struct {
	Experiments int `json:"experiments"`
	OK          int `json:"ok"`
	Failed      int `json:"failed"`
}

// sweepCell is one artifact's outcome inside a sweep.
type sweepCell struct {
	raw json.RawMessage
	hit bool
}

// sweepRunID keys a sweep's checkpoint by everything that defines it —
// parameters, selection, code version — mirroring cmd/paperbench's
// scheme so a rerun of the same configuration finds its own progress and
// nothing else's.
func sweepRunID(p experiments.Params, arts []experiments.Artifact) string {
	sel := make([]string, 0, len(arts))
	for _, a := range arts {
		sel = append(sel, a.Slug)
	}
	sort.Strings(sel)
	enc, _ := json.Marshal(p)
	h := sha256.New()
	fmt.Fprintf(h, "svc\x00code=%s\x00params=%s\x00sel=%s", runner.CodeVersion(), enc, strings.Join(sel, ","))
	return "svc-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// runSweep executes the selected artifacts through the supervised worker
// pool, each cell memoized under the same (slug, Params) key
// cmd/paperbench uses — a sweep the CLI already computed replays from
// cache, and vice versa. Progress is checkpointed per cell, so a sweep
// killed mid-flight and resubmitted recomputes only the unfinished
// cells (the finished ones hit the cache). Returns the NDJSON lines in
// artifact order, cache-hit counts, and the pool's error (a MultiError
// under partial results).
func (s *Service) runSweep(ctx context.Context, p experiments.Params, arts []experiments.Artifact) ([]sweepLine, uint64, uint64, error) {
	var ckpt *runner.Checkpoint
	if s.cache != nil && s.cfg.CheckpointDir != "" {
		ckpt = runner.OpenCheckpoint(s.cfg.CheckpointDir, sweepRunID(p, arts))
	}

	// Job-scoped supervision: the options ride the context into the pool,
	// so everything this job fans out inherits the policy without global
	// state (two concurrent sweeps could run different policies).
	jobCtx := runner.WithOptions(ctx, append(s.supervision(), runner.PartialResults())...)

	tasks := make([]runner.Task[sweepCell], len(arts))
	for i, art := range arts {
		art := art
		tasks[i] = runner.NewTask("sweep/"+art.Slug, func(tctx context.Context) (sweepCell, error) {
			_, sp := obs.Start(tctx, "cache.lookup")
			sp.Str("experiment", art.Slug)
			raw, hit, err := runner.Memo(s.cache, art.Slug, p, func() (json.RawMessage, error) {
				if cerr := tctx.Err(); cerr != nil {
					return nil, cerr
				}
				v, rerr := art.Run(p)
				if rerr != nil {
					return nil, rerr
				}
				enc, merr := json.Marshal(v)
				if merr != nil {
					return nil, fmt.Errorf("service: encoding %s result: %w", art.Slug, merr)
				}
				s.records.Add(p.Instructions)
				return enc, nil
			})
			sp.Bool("hit", hit)
			sp.Err(err)
			sp.End()
			if err != nil {
				return sweepCell{}, err
			}
			if key, kerr := runner.Key(art.Slug, p); kerr == nil {
				_ = ckpt.MarkDone(art.Slug, key)
			}
			return sweepCell{raw: raw, hit: hit}, nil
		})
	}
	cells, err := runner.Map(jobCtx, tasks)

	failed := map[int]error{}
	var me *runner.MultiError
	if errors.As(err, &me) {
		for _, f := range me.Failures {
			failed[f.Index] = f
		}
	} else if err != nil {
		// Whole-pool failure (e.g. the request was canceled before partial
		// results could be collected): every cell shares the error.
		for i := range arts {
			failed[i] = err
		}
	}
	lines := make([]sweepLine, len(arts))
	var hits, misses uint64
	for i, art := range arts {
		if ferr, ok := failed[i]; ok {
			lines[i] = sweepLine{Experiment: art.Slug, Error: ferr.Error()}
			continue
		}
		if i < len(cells) {
			lines[i] = sweepLine{Experiment: art.Slug, Result: cells[i].raw}
			if cells[i].hit {
				hits++
			} else {
				misses++
			}
		}
	}
	if err == nil && ckpt != nil && len(failed) == 0 {
		// Complete: nothing left to resume.
		_ = ckpt.Remove()
	}
	return lines, hits, misses, err
}
