package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
)

// maxSweepCells bounds the artifacts × seeds expansion so a typo'd seed
// list cannot fan a single request into millions of cells.
const maxSweepCells = 10_000

// SweepSpec is the body of POST /v1/sweep: which experiments to run at
// what scale. Validation is shared with cmd/paperbench's -experiment
// flag (experiments.ValidateSelection), so the service and the CLI
// accept exactly the same selections and reject typos with the same
// valid-name listing.
type SweepSpec struct {
	// Experiments selects artifacts by name ("all", "fig2", "table1", ...).
	Experiments []string `json:"experiments"`
	// Quick uses the reduced test-scale parameters.
	Quick bool `json:"quick,omitempty"`
	// Accesses/Instructions/Seed override individual parameters when
	// nonzero.
	Accesses     uint64 `json:"accesses,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	// Seeds, when set, expands the sweep into one cell per (artifact,
	// seed) pair — the fleet-scale shape: each cell is independently
	// memoized and ring-routed. Empty keeps the one-cell-per-artifact
	// behavior (and the exact pre-Seeds output bytes).
	Seeds []uint64 `json:"seeds,omitempty"`
}

// normalize validates the selection and resolves the run parameters.
func (sp *SweepSpec) normalize() (experiments.Params, []experiments.Artifact, error) {
	if len(sp.Experiments) == 0 {
		sp.Experiments = []string{experiments.SelectAll}
	}
	if err := experiments.ValidateSelection(sp.Experiments); err != nil {
		return experiments.Params{}, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	arts, err := experiments.Select(sp.Experiments)
	if err != nil {
		return experiments.Params{}, nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if cells := len(arts) * max(1, len(sp.Seeds)); cells > maxSweepCells {
		return experiments.Params{}, nil, fmt.Errorf("%w: sweep expands to %d cells (limit %d)", ErrBadRequest, cells, maxSweepCells)
	}
	p := experiments.Default()
	if sp.Quick {
		p = experiments.Quick()
	}
	if sp.Accesses != 0 {
		p.MemAccesses = sp.Accesses
	}
	if sp.Instructions != 0 {
		p.Instructions = sp.Instructions
	}
	if sp.Seed != 0 {
		p.Seed = sp.Seed
	}
	return p, arts, nil
}

// sweepLine is one NDJSON record of a sweep response: the artifact's
// result verbatim (the memo cache's raw JSON, so cold and warm runs are
// byte-identical) or its error. Cell names the (artifact, seed) cell in
// seeded sweeps and is absent otherwise, keeping legacy output bytes
// unchanged.
type sweepLine struct {
	Experiment string          `json:"experiment"`
	Cell       string          `json:"cell,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// sweepSummary is the trailing NDJSON record.
type sweepSummary struct {
	Experiments int `json:"experiments"`
	OK          int `json:"ok"`
	Failed      int `json:"failed"`
}

// sweepCell is one cell's outcome inside a sweep.
type sweepCell struct {
	raw json.RawMessage
	hit bool
}

// sweepCellDef is one unit of sweep work: an artifact at concrete
// parameters, with the ID that names it in checkpoints and output.
type sweepCellDef struct {
	art    experiments.Artifact
	p      experiments.Params
	id     string // slug, or slug@s<seed> in seeded sweeps
	seeded bool
}

// sweepCells expands (params, artifacts, seeds) into the sweep's cell
// list. No seeds: one cell per artifact at p, IDs are bare slugs —
// exactly the historical shape. Seeds: artifacts × seeds cells, each
// with p.Seed overridden, in artifact-major order so output stays
// grouped by experiment.
func sweepCells(p experiments.Params, arts []experiments.Artifact, seeds []uint64) []sweepCellDef {
	if len(seeds) == 0 {
		cells := make([]sweepCellDef, len(arts))
		for i, art := range arts {
			cells[i] = sweepCellDef{art: art, p: p, id: art.Slug}
		}
		return cells
	}
	cells := make([]sweepCellDef, 0, len(arts)*len(seeds))
	for _, art := range arts {
		for _, seed := range seeds {
			ps := p
			ps.Seed = seed
			cells = append(cells, sweepCellDef{art: art, p: ps, id: fmt.Sprintf("%s@s%d", art.Slug, seed), seeded: true})
		}
	}
	return cells
}

// sweepRunID keys a sweep's checkpoint by everything that defines it —
// parameters, selection, seeds, code version — mirroring cmd/paperbench's
// scheme so a rerun of the same configuration finds its own progress and
// nothing else's. The seeds component is appended only when present, so
// pre-Seeds sweeps keep their historical checkpoint IDs.
func sweepRunID(p experiments.Params, arts []experiments.Artifact, seeds []uint64) string {
	sel := make([]string, 0, len(arts))
	for _, a := range arts {
		sel = append(sel, a.Slug)
	}
	sort.Strings(sel)
	enc, _ := json.Marshal(p)
	h := sha256.New()
	fmt.Fprintf(h, "svc\x00code=%s\x00params=%s\x00sel=%s", runner.CodeVersion(), enc, strings.Join(sel, ","))
	if len(seeds) > 0 {
		senc, _ := json.Marshal(seeds)
		fmt.Fprintf(h, "\x00seeds=%s", senc)
	}
	return "svc-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// runSweep executes the sweep's cells through the supervised worker
// pool, each memoized under the same (slug, Params) key cmd/paperbench
// uses — a sweep the CLI already computed replays from cache, and vice
// versa. Progress is checkpointed per cell, so a sweep killed mid-flight
// and resubmitted recomputes only the unfinished cells (the finished
// ones hit the cache). Clustered, each cell routes through memoCell —
// remote-owned cells forward to their ring owner — and the fan-out
// widens beyond local compute capacity so forwards overlap while the
// compute gate keeps local work bounded. Returns the NDJSON lines in
// cell order, cache-hit counts, and the pool's error (a MultiError
// under partial results).
func (s *Service) runSweep(ctx context.Context, p experiments.Params, arts []experiments.Artifact, seeds []uint64) ([]sweepLine, uint64, uint64, error) {
	cells := sweepCells(p, arts, seeds)

	var ckpt *runner.Checkpoint
	if s.cache != nil && s.cfg.CheckpointDir != "" {
		ckpt = runner.OpenCheckpoint(s.cfg.CheckpointDir, sweepRunID(p, arts, seeds))
	}

	// Job-scoped supervision: the options ride the context into the pool,
	// so everything this job fans out inherits the policy without global
	// state (two concurrent sweeps could run different policies).
	opts := s.supervision()
	if s.cluster.Enabled() {
		// Widen the coordinator fan-out past local compute capacity:
		// forwards are network-bound and must overlap; actual local
		// compute is bounded by the gate (compSem), not the pool width.
		fan := s.computeWorkers() + 32
		if fan > len(cells) {
			fan = len(cells)
		}
		if fan < 1 {
			fan = 1
		}
		opts = append(opts, runner.Workers(fan))
	}
	jobCtx := runner.WithOptions(ctx, append(opts, runner.PartialResults())...)

	tasks := make([]runner.Task[sweepCell], len(cells))
	for i, cell := range cells {
		cell := cell
		tasks[i] = runner.NewTask("sweep/"+cell.id, func(tctx context.Context) (sweepCell, error) {
			_, sp := obs.Start(tctx, "cache.lookup")
			sp.Str("experiment", cell.id)
			raw, hit, err := s.memoCell(tctx, cell.art.Slug, cell.p, func() (json.RawMessage, error) {
				if cerr := tctx.Err(); cerr != nil {
					return nil, cerr
				}
				return s.experimentRaw(tctx, cell.art.Slug, cell.p)
			})
			sp.Bool("hit", hit)
			sp.Err(err)
			sp.End()
			if err != nil {
				return sweepCell{}, err
			}
			if key, kerr := runner.Key(cell.art.Slug, cell.p); kerr == nil {
				_ = ckpt.MarkDone(cell.id, key)
			}
			return sweepCell{raw: raw, hit: hit}, nil
		})
	}
	results, err := runner.Map(jobCtx, tasks)

	failed := map[int]error{}
	var me *runner.MultiError
	if errors.As(err, &me) {
		for _, f := range me.Failures {
			failed[f.Index] = f
		}
	} else if err != nil {
		// Whole-pool failure (e.g. the request was canceled before partial
		// results could be collected): every cell shares the error.
		for i := range cells {
			failed[i] = err
		}
	}
	lines := make([]sweepLine, len(cells))
	var hits, misses uint64
	for i, cell := range cells {
		line := sweepLine{Experiment: cell.art.Slug}
		if cell.seeded {
			line.Cell = cell.id
		}
		if ferr, ok := failed[i]; ok {
			line.Error = ferr.Error()
			lines[i] = line
			continue
		}
		if i < len(results) {
			line.Result = results[i].raw
			lines[i] = line
			if results[i].hit {
				hits++
			} else {
				misses++
			}
		}
	}
	if err == nil && ckpt != nil && len(failed) == 0 {
		// Complete: nothing left to resume.
		_ = ckpt.Remove()
	}
	return lines, hits, misses, err
}
