package service

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/trace"
)

// buildTraceV2 encodes n load/store records in the fixed-stride v2 format
// with the count declared, over a bounded working set of lines so the
// classifier's state stops growing once warm.
func buildTraceV2(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterV2(&buf, uint64(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		op := trace.Load
		if i%2 == 1 {
			op = trace.Store
		}
		if err := w.Write(trace.Instr{PC: 0x1000, Addr: mem.Addr((i % 2048) * 64), Op: op}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClassifyUploadStreamsBeforeBodyComplete proves the upload path never
// buffers the request body: the response's first records must arrive while
// the client is still holding the rest of the trace back. A server that
// read the body to completion before classifying would block this test
// until the deadline.
func TestClassifyUploadStreamsBeforeBodyComplete(t *testing.T) {
	_, srv := newTestService(t, Config{})
	const total = 2000
	raw := buildTraceV2(t, total)
	// Enough records for a few full batches, held short of the declared
	// count so the server cannot have seen the whole body yet.
	firstChunk := headerV2Size(t, raw) + 600*recordStrideV2(t, raw)

	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/classify?size_kb=8&assoc=2&emit=all", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")

	type result struct {
		lines int
		err   error
	}
	firstLine := make(chan error, 1)
	done := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			firstLine <- err
			return
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		_, err = br.ReadString('\n')
		firstLine <- err
		lines := 1
		for {
			if _, err := br.ReadString('\n'); err != nil {
				done <- result{lines, nil}
				return
			}
			lines++
		}
	}()

	if _, err := pw.Write(raw[:firstChunk]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-firstLine:
		if err != nil {
			t.Fatalf("reading first response line: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no response line within 10s of a partial body: the upload is being buffered")
	}
	if _, err := pw.Write(raw[firstChunk:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	select {
	case res := <-done:
		if res.lines != total+1 { // one line per access + summary
			t.Fatalf("got %d response lines, want %d", res.lines, total+1)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("response did not complete after the body was finished")
	}
}

// headerV2Size and recordStrideV2 recover the wire layout from a built
// trace rather than hard-coding constants the trace package owns: the
// header is everything before the first record of a zero-record trace.
func headerV2Size(t testing.TB, raw []byte) int {
	t.Helper()
	empty := buildTraceV2(t, 0)
	if len(empty) >= len(raw) {
		t.Fatal("trace has no records")
	}
	return len(empty)
}

func recordStrideV2(t testing.TB, raw []byte) int {
	t.Helper()
	one := buildTraceV2(t, 1)
	return len(one) - headerV2Size(t, one)
}

// TestClassifyUploadBoundedWork pins the upload classification's cost
// model: work and memory must be flat in the record count — a fixed setup
// cost (run state, one batch of scratch) and nothing per record. The
// allocation bound (well under one per record) is the "no per-record
// allocation" guarantee; the byte bound (a fraction of the body size)
// is the "never buffers the upload" guarantee, measured rather than
// inferred.
func TestClassifyUploadBoundedWork(t *testing.T) {
	const records = 50_000
	raw := buildTraceV2(t, records)
	spec := ClassifySpec{SizeKB: 8, Assoc: 2, Emit: EmitSummary}
	if err := spec.normalize(true, 0); err != nil {
		t.Fatal(err)
	}
	classifyOnce := func() {
		rd, err := trace.NewReaderContext(context.Background(), bytes.NewReader(raw), trace.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := runClassify(context.Background(), spec, rd, func(any) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if st.Records != records {
			t.Fatalf("classified %d records, want %d", st.Records, records)
		}
	}
	classifyOnce() // warm any process-global state

	if avg := testing.AllocsPerRun(5, classifyOnce); avg > 2000 {
		t.Errorf("upload classification of %d records costs %.0f allocs/run; the per-record path is allocating", records, avg)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	classifyOnce()
	runtime.ReadMemStats(&after)
	if d := after.TotalAlloc - before.TotalAlloc; d > uint64(len(raw))/2 {
		t.Errorf("upload classification allocated %d bytes for a %d-byte body; the body is being buffered", d, len(raw))
	}
}
