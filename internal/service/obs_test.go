package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// classifyOnce drives one successful spec classify and returns the job
// ID from the response header.
func classifyOnce(t *testing.T, srv string) string {
	t.Helper()
	resp := postJSON(t, srv+"/v1/classify",
		fmt.Sprintf(`{"workload":%q,"accesses":5000,"size_kb":8,"assoc":2,"emit":"summary"}`, anyWorkload(t)))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify status %d: %s", resp.StatusCode, readAll(t, resp.Body))
	}
	readAll(t, resp.Body)
	id := resp.Header.Get("X-Mct-Job")
	if id == "" {
		t.Fatal("X-Mct-Job header missing")
	}
	return id
}

func TestPrometheusExposition(t *testing.T) {
	_, srv := newTestService(t, Config{})
	classifyOnce(t, srv.URL)

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}

	// Strict parse: zero unparseable lines is the obs-smoke contract.
	samples, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if s.Labels == nil {
			byName[s.Name] = s.Value
		}
	}
	if byName["mct_jobs_accepted_total"] < 1 {
		t.Errorf("mct_jobs_accepted_total = %v, want >= 1", byName["mct_jobs_accepted_total"])
	}
	if byName["mct_queue_capacity"] <= 0 {
		t.Errorf("mct_queue_capacity = %v", byName["mct_queue_capacity"])
	}

	hists := obs.HistogramsFromSamples(samples)
	var classify *obs.ParsedHistogram
	for i := range hists {
		if hists[i].Name == "mct_classify_duration_seconds" {
			classify = &hists[i]
		}
	}
	if classify == nil {
		t.Fatalf("no mct_classify_duration_seconds histogram in %v", hists)
	}
	if classify.Count != 1 {
		t.Errorf("classify histogram count = %d, want 1", classify.Count)
	}
	if got := classify.Buckets[len(classify.Buckets)-1]; got.LE != "+Inf" || got.CumulativeCount != classify.Count {
		t.Errorf("+Inf bucket = %+v, want cumulative count %d", got, classify.Count)
	}
}

// TestMetricNamingConvention is the vet-style gate: every metric the
// service registers must satisfy the repo's naming rules. New metrics
// that violate the convention fail here (and would already have panicked
// at registration).
func TestMetricNamingConvention(t *testing.T) {
	s, _ := newTestService(t, Config{})
	names := s.Metrics().Names()
	if len(names) < 10 {
		t.Fatalf("only %d registered metrics — registry wiring lost?", len(names))
	}
	for name, kind := range names {
		if err := obs.CheckMetricName(kind, name); err != nil {
			t.Errorf("metric %q: %v", name, err)
		}
	}
	for _, want := range []string{
		"mct_classify_duration_seconds", "mct_sweep_duration_seconds",
		"mct_admission_wait_seconds", "mct_classify_batch_size",
	} {
		if names[want] != obs.KindHistogram {
			t.Errorf("histogram %q missing from registry", want)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, srv := newTestService(t, Config{})
	id := classifyOnce(t, srv.URL)

	resp, err := http.Get(srv.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	names := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("trace line is not a span record: %v\n%s", err, sc.Text())
		}
		if rec.Trace != id {
			t.Errorf("span trace = %q, want %q", rec.Trace, id)
		}
		names[rec.Name]++
	}
	for _, want := range []string{"http.classify", "service.admit", "cache.lookup"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}

	// Unknown jobs 404, mirroring /v1/jobs.
	resp2, err := http.Get(srv.URL + "/v1/trace/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", resp2.StatusCode)
	}
}

func TestExpvarHistogramDigestsAreFlat(t *testing.T) {
	_, srv := newTestService(t, Config{})
	classifyOnce(t, srv.URL)
	// scrapeMetrics fails the test if any value is non-numeric — the
	// flat-JSON contract the pre-existing clients rely on.
	m := scrapeMetrics(t, srv.URL)
	if m["classify_latency_count"] != 1 {
		t.Errorf("classify_latency_count = %v, want 1", m["classify_latency_count"])
	}
	if m["batch_size_count"] != 1 {
		t.Errorf("batch_size_count = %v, want 1", m["batch_size_count"])
	}
	if m["classify_latency_p50_ms"] < 0 {
		t.Errorf("classify_latency_p50_ms = %v", m["classify_latency_p50_ms"])
	}
	// Pre-existing keys must still be present alongside the digests.
	for _, key := range []string{"jobs_accepted", "queue_inflight", "cache_hits", "records_total"} {
		if _, ok := m[key]; !ok {
			t.Errorf("pre-existing expvar key %q lost", key)
		}
	}
}
