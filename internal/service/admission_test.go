package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionCapacityAndWaitingRoom(t *testing.T) {
	a := newAdmission(2, 1, 0, 20*time.Millisecond)
	ctx := context.Background()

	rel1, err := a.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Admit(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	// Third request: capacity is full, so it takes the single waiter slot
	// and times out with ErrBusy because nothing releases.
	start := time.Now()
	if _, err := a.Admit(ctx, "c"); !errors.Is(err, ErrBusy) {
		t.Fatalf("over-capacity admit = %v, want ErrBusy", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("waiter was rejected immediately; it must wait admitWait first")
	}

	// While a release frees a slot, a new request gets in.
	rel1()
	rel3, err := a.Admit(ctx, "c")
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
	rel3()
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after all releases = %d, want 0", got)
	}
	if got := a.Peak(); got != 2 {
		t.Fatalf("peak = %d, want 2", got)
	}
}

func TestAdmissionWaitingRoomIsBounded(t *testing.T) {
	a := newAdmission(1, 0, 0, time.Second)
	rel, err := a.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// maxWaiters = 0: a full pool rejects instantly, never blocks.
	start := time.Now()
	if _, err := a.Admit(context.Background(), "b"); !errors.Is(err, ErrBusy) {
		t.Fatalf("admit = %v, want ErrBusy", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("zero-waiter admission must reject without waiting")
	}
	if a.rejectedFull.Load() != 1 {
		t.Errorf("rejectedFull = %d, want 1", a.rejectedFull.Load())
	}
}

func TestAdmissionPerClientFairness(t *testing.T) {
	a := newAdmission(4, 4, 1, 10*time.Millisecond)
	ctx := context.Background()

	relA, err := a.Admit(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	// Alice is at her cap: her next request bounces immediately even
	// though the pool has free slots — and without eating a waiter slot.
	if _, err := a.Admit(ctx, "alice"); !errors.Is(err, ErrClientBusy) {
		t.Fatalf("second alice admit = %v, want ErrClientBusy", err)
	}
	if got := a.Waiters(); got != 0 {
		t.Errorf("fairness rejection consumed a waiter slot (waiters=%d)", got)
	}
	// Other clients are unaffected.
	relB, err := a.Admit(ctx, "bob")
	if err != nil {
		t.Fatalf("bob must not be blocked by alice: %v", err)
	}
	relA()
	// With her slot back, alice is admitted again.
	relA2, err := a.Admit(ctx, "alice")
	if err != nil {
		t.Fatalf("alice after release: %v", err)
	}
	relA2()
	relB()
	if a.rejectedClient.Load() != 1 {
		t.Errorf("rejectedClient = %d, want 1", a.rejectedClient.Load())
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := newAdmission(2, 2, 0, 10*time.Millisecond)
	rel, err := a.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	a.StartDrain()
	if !a.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}
	if _, err := a.Admit(context.Background(), "b"); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit while draining = %v, want ErrDraining", err)
	}

	// AwaitIdle blocks until the in-flight request releases.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := a.AwaitIdle(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AwaitIdle with work in flight = %v, want deadline", err)
	}
	rel()
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := a.AwaitIdle(ctx2); err != nil {
		t.Fatalf("AwaitIdle after release: %v", err)
	}
}

func TestAdmissionReleaseIsIdempotent(t *testing.T) {
	a := newAdmission(1, 0, 0, time.Millisecond)
	rel, err := a.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not free a phantom slot
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
	// Exactly one slot is available again, not two.
	r1, err := a.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Admit(context.Background(), "b"); !errors.Is(err, ErrBusy) {
		t.Fatalf("second admit = %v, want ErrBusy (double release freed a phantom slot?)", err)
	}
	r1()
}

func TestAdmissionCanceledWaiter(t *testing.T) {
	a := newAdmission(1, 1, 0, time.Minute)
	rel, err := a.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, werr := a.Admit(ctx, "b")
		errc <- werr
	}()
	// Give the waiter time to enter the waiting room, then abandon it.
	deadline := time.Now().Add(time.Second)
	for a.Waiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case werr := <-errc:
		if !errors.Is(werr, context.Canceled) {
			t.Fatalf("canceled waiter got %v, want context.Canceled", werr)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled waiter never returned")
	}
	if got := a.Waiters(); got != 0 {
		t.Errorf("waiters = %d after cancellation, want 0", got)
	}
}
