package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// mrcLines parses an NDJSON MRC response into point lines and the
// trailing summary.
func mrcLines(t *testing.T, body []byte) ([]mrcPoint, MRCSummary) {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("got %d lines, want points plus a summary:\n%s", len(lines), body)
	}
	points := make([]mrcPoint, 0, len(lines)-1)
	for _, line := range lines[:len(lines)-1] {
		var rec struct {
			Point *mrcPoint `json:"point"`
		}
		if err := json.Unmarshal(line, &rec); err != nil || rec.Point == nil {
			t.Fatalf("not a point record: %v\n%s", err, line)
		}
		points = append(points, *rec.Point)
	}
	var tail struct {
		Summary *MRCSummary `json:"summary"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &tail); err != nil || tail.Summary == nil {
		t.Fatalf("last line is not a summary: %v\n%s", err, lines[len(lines)-1])
	}
	return points, *tail.Summary
}

// checkMRCInvariants asserts the structural properties every MRC
// response must satisfy: ascending sizes, a monotone non-increasing
// curve, and at every size an exact conflict/capacity/compulsory
// decomposition of the simulated misses.
func checkMRCInvariants(t *testing.T, points []mrcPoint) {
	t.Helper()
	for i, p := range points {
		if i > 0 {
			if p.SizeKB <= points[i-1].SizeKB {
				t.Errorf("sizes not ascending: %d after %d", p.SizeKB, points[i-1].SizeKB)
			}
			if p.MissRatio > points[i-1].MissRatio+1e-12 {
				t.Errorf("MRC not monotone: %.6f @ %dKB > %.6f @ %dKB",
					p.MissRatio, p.SizeKB, points[i-1].MissRatio, points[i-1].SizeKB)
			}
		}
		if p.MissRatio < 0 || p.MissRatio > 1 {
			t.Errorf("miss ratio %v outside [0,1] at %dKB", p.MissRatio, p.SizeKB)
		}
		m := p.MCT
		if m.Conflict+m.Capacity+m.Compulsory != m.Misses {
			t.Errorf("%dKB: conflict %d + capacity %d + compulsory %d != misses %d",
				p.SizeKB, m.Conflict, m.Capacity, m.Compulsory, m.Misses)
		}
		if m.Misses > m.Accesses {
			t.Errorf("%dKB: misses %d > accesses %d", p.SizeKB, m.Misses, m.Accesses)
		}
	}
}

func TestMRCSpecStreamsPoints(t *testing.T) {
	_, srv := newTestService(t, Config{})
	w := anyWorkload(t)

	resp := postJSON(t, srv.URL+"/v1/mrc",
		fmt.Sprintf(`{"workload":%q,"accesses":50000,"sizes_kb":[4,8,16,32,64],"rate":0.1}`, w))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp.Body))
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	jobID := resp.Header.Get("X-Mct-Job")
	if jobID == "" {
		t.Error("X-Mct-Job header missing")
	}

	points, sum := mrcLines(t, readAll(t, resp.Body))
	if len(points) != 5 {
		t.Fatalf("got %d points, want 5", len(points))
	}
	checkMRCInvariants(t, points)
	if sum.Accesses != 50000 {
		t.Errorf("summary accesses = %d, want 50000", sum.Accesses)
	}
	if sum.Sampled == 0 || sum.RateInitial <= 0 || sum.Points != 5 {
		t.Errorf("summary telemetry incomplete: %+v", sum)
	}

	jr := postJSONGet(t, srv.URL+"/v1/jobs/"+jobID)
	defer jr.Body.Close()
	var job Job
	if err := json.NewDecoder(jr.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.State != JobDone {
		t.Errorf("job state = %s, want done", job.State)
	}
	if job.Kind != "mrc" || job.Records != 50000 {
		t.Errorf("job kind/records = %s/%d, want mrc/50000", job.Kind, job.Records)
	}
}

// TestMRCColdWarmByteIdentical: the second identical request replays the
// memoized artifact — same bytes, counted as a cache hit.
func TestMRCColdWarmByteIdentical(t *testing.T) {
	_, srv := newTestService(t, Config{})
	w := anyWorkload(t)
	body := fmt.Sprintf(`{"workload":%q,"accesses":30000,"sizes_kb":[8,32]}`, w)

	fetch := func() ([]byte, string) {
		resp := postJSON(t, srv.URL+"/v1/mrc", body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp.Body))
		}
		return readAll(t, resp.Body), resp.Header.Get("X-Mct-Job")
	}
	cold, _ := fetch()
	warm, warmJob := fetch()
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm MRC body differs from cold:\ncold: %d bytes\nwarm: %d bytes", len(cold), len(warm))
	}
	jr := postJSONGet(t, srv.URL+"/v1/jobs/"+warmJob)
	defer jr.Body.Close()
	var job Job
	if err := json.NewDecoder(jr.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.CacheHits != 1 {
		t.Errorf("warm job cache hits = %d, want 1", job.CacheHits)
	}
}

// TestMRCUpload drives the trace-upload path: geometry and sampling from
// query parameters, invariants on the result, and determinism across
// re-uploads of the same bytes (no memoization on this path — the
// profile itself must be deterministic).
func TestMRCUpload(t *testing.T) {
	_, srv := newTestService(t, Config{})
	raw := buildTraceV2(t, 40000)

	upload := func() []byte {
		resp, err := http.Post(srv.URL+"/v1/mrc?sizes_kb=4,16,64&rate=0.5&assoc=2",
			"application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, readAll(t, resp.Body))
		}
		return readAll(t, resp.Body)
	}
	first := upload()
	points, sum := mrcLines(t, first)
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	checkMRCInvariants(t, points)
	if sum.Accesses != 40000 {
		t.Errorf("summary accesses = %d, want 40000", sum.Accesses)
	}
	// The synthetic trace cycles 2048 lines = 128KB: at 64KB some
	// capacity pressure must be visible, and the curve must not be flat
	// zero (the trace misses constantly at 4KB).
	if points[0].MissRatio == 0 {
		t.Errorf("4KB miss ratio = 0 for a 128KB-working-set trace")
	}
	if !bytes.Equal(first, upload()) {
		t.Fatal("re-uploading the same trace produced different bytes")
	}
}

func TestTenantHeaderValidation(t *testing.T) {
	_, srv := newTestService(t, Config{})
	w := anyWorkload(t)
	body := fmt.Sprintf(`{"workload":%q,"accesses":1000}`, w)

	for _, tc := range []struct {
		name, tenant string
		wantStatus   int
	}{
		{"valid", "team-a.prod_1", http.StatusOK},
		{"spoof-spaces", "team a; drop", http.StatusBadRequest},
		{"spoof-path", "../../etc/passwd", http.StatusBadRequest},
		{"overlong", strings.Repeat("a", 65), http.StatusBadRequest},
		{"exactly-64", strings.Repeat("a", 64), http.StatusOK},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/mrc", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(TenantHeader, tc.tenant)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("tenant %q: status %d, want %d: %s",
					tc.tenant, resp.StatusCode, tc.wantStatus, readAll(t, resp.Body))
			}
		})
	}
}

func TestTenantIDFallbackChain(t *testing.T) {
	mk := func(tenant, client, remote string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/mrc", nil)
		if tenant != "" {
			r.Header.Set(TenantHeader, tenant)
		}
		if client != "" {
			r.Header.Set("X-Mct-Client", client)
		}
		r.RemoteAddr = remote
		return r
	}
	for _, tc := range []struct {
		name                   string
		tenant, client, remote string
		want                   string
		wantErr                bool
	}{
		{"header wins", "t1", "c1", "10.0.0.1:1234", "t1", false},
		{"invalid header is 400 not fallback", "bad tenant!", "c1", "10.0.0.1:1234", "", true},
		{"client fallback", "", "c1", "10.0.0.1:1234", "c1", false},
		{"invalid client falls to host", "", "no good", "10.0.0.1:1234", "10.0.0.1", false},
		{"ipv6 host fails charset, default", "", "", "[::1]:1234", "default", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tenantID(mk(tc.tenant, tc.client, tc.remote))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("tenantID = %q, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("tenantID = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestTenantQuotaSpecPath: record-then-compare semantics — the request
// that crosses the sample budget still serves (its work was already
// admitted), and the next request from that tenant is rejected 429
// before admission while another tenant sails through.
func TestTenantQuotaSpecPath(t *testing.T) {
	s, srv := newTestService(t, Config{Tenant: TenantQuota{MaxSamples: 10}})
	w := anyWorkload(t)

	do := func(tenant, body string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/mrc", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Cold compute: samples far beyond the 10-ref budget, still 200.
	body := fmt.Sprintf(`{"workload":%q,"accesses":20000,"sizes_kb":[8],"rate":1}`, w)
	r1 := do("greedy", body)
	readAll(t, r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", r1.StatusCode)
	}

	// Same tenant, any request: rejected at the precheck. A different
	// spec avoids the memo cache masking anything.
	r2 := do("greedy", fmt.Sprintf(`{"workload":%q,"accesses":10000,"sizes_kb":[4]}`, w))
	b2 := readAll(t, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota tenant: status %d, want 429: %s", r2.StatusCode, b2)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Another tenant is unaffected; the cached artifact replays without
	// charging, so even the greedy spec serves warm.
	r3 := do("frugal", body)
	readAll(t, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d, want 200", r3.StatusCode)
	}

	if s.quotaRejects.Load() == 0 {
		t.Error("quota rejection not counted")
	}
}

// TestTenantQuotaUploadMidStream: an upload crossing the byte budget
// aborts mid-stream with a trailing 429 error record (the status line
// is long gone by then).
func TestTenantQuotaUploadMidStream(t *testing.T) {
	_, srv := newTestService(t, Config{Tenant: TenantQuota{MaxBytes: 4096}})
	raw := buildTraceV2(t, 30000) // ~24 bytes/record: far past 4KB

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/mrc?sizes_kb=8", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(TenantHeader, "uploader")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with a trailing error record", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(readAll(t, resp.Body)), []byte("\n"))
	var tail errorBody
	if err := json.Unmarshal(lines[len(lines)-1], &tail); err != nil {
		t.Fatalf("last line is not an error record: %v\n%s", err, lines[len(lines)-1])
	}
	if tail.Status != http.StatusTooManyRequests || !strings.Contains(tail.Error, "quota") {
		t.Errorf("trailing error = %+v, want a 429 quota error", tail)
	}
}

// TestMRCMaxSampledQuota: asking for a bigger tracked set than the
// tenant cap is a quota rejection (429), not a validation error.
func TestMRCMaxSampledQuota(t *testing.T) {
	_, srv := newTestService(t, Config{Tenant: TenantQuota{MaxSampledSet: 1024}})
	w := anyWorkload(t)
	resp := postJSON(t, srv.URL+"/v1/mrc",
		fmt.Sprintf(`{"workload":%q,"accesses":1000,"max_sampled":100000}`, w))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, readAll(t, resp.Body))
	}
}

func TestTenantLedgerWindowReset(t *testing.T) {
	l := newTenantLedger(TenantQuota{MaxSamples: 5, Window: time.Hour})
	clock := time.Now()
	l.now = func() time.Time { return clock }

	if err := l.charge("t", 10, 0); err == nil {
		t.Fatal("10 of 5 samples should exceed quota")
	}
	if err := l.precheck("t"); err == nil {
		t.Fatal("precheck should still reject inside the window")
	}
	clock = clock.Add(2 * time.Hour)
	if err := l.precheck("t"); err != nil {
		t.Fatalf("window rolled, precheck should pass: %v", err)
	}
	if err := l.charge("t", 4, 0); err != nil {
		t.Fatalf("fresh window charge under budget: %v", err)
	}
}

func TestTenantLedgerEviction(t *testing.T) {
	l := newTenantLedger(TenantQuota{MaxTenants: 2, Window: time.Hour})
	clock := time.Now()
	l.now = func() time.Time { return clock }

	_ = l.charge("oldest", 1, 0)
	clock = clock.Add(time.Minute)
	_ = l.charge("middle", 1, 0)
	clock = clock.Add(time.Minute)
	_ = l.charge("newest", 1, 0) // evicts "oldest"
	if len(l.m) != 2 {
		t.Fatalf("ledger holds %d tenants, want 2", len(l.m))
	}
	if _, ok := l.m["oldest"]; ok {
		t.Error("stalest tenant not evicted")
	}
	if _, ok := l.m["newest"]; !ok {
		t.Error("newest tenant missing")
	}
}
