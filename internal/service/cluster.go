package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/trace"
)

// This file is the service side of the cluster subsystem: cell routing
// (memoCell), the forwarding client path with the straggler-steal
// hedge (remoteCell), and the two internal peer endpoints — POST
// /v1/cluster/cell (execute one cell here) and GET /v1/cache/{key}
// (serve a finished cell from the memo cache without computing).
//
// The invariant that keeps forwarding loop-free: only memoCell ever
// consults the ring, and the cell handler never calls memoCell — a
// forwarded cell is always computed locally by its receiver, so the
// forwarding depth is one by construction even when two nodes briefly
// disagree about ring membership.

// reqMeta is the caller context a request carries into its fan-out:
// the job/trace ID, the idempotency key, and the brownout priority.
// Forwarded cells propagate all three across the wire so the remote
// node's idempotency store and shed ladder behave exactly as this
// node's would have.
type reqMeta struct {
	jobID    string
	idemKey  string
	priority string
}

type reqMetaCtxKey struct{}

func withReqMeta(ctx context.Context, m reqMeta) context.Context {
	return context.WithValue(ctx, reqMetaCtxKey{}, m)
}

func metaFrom(ctx context.Context) reqMeta {
	m, _ := ctx.Value(reqMetaCtxKey{}).(reqMeta)
	return m
}

// cellIdemKey picks the idempotency key a forwarded cell carries. A
// whole-request forward (spec-path classify or mrc: the request IS one
// cell) propagates the caller's key unchanged, so the remote store
// dedupes the caller's retries exactly as the first hop would have.
// Sweep cells use a content-derived key instead — the cell is a pure
// function of (slug, payload), so every node forwarding the same cell
// coalesces onto one remote computation regardless of which job asked.
func cellIdemKey(slug, key string, m reqMeta) string {
	if (slug == classifySlug || slug == mrcSlug) && m.idemKey != "" {
		return m.idemKey
	}
	return "cell-" + key[:32]
}

// computeWorkers is this node's local compute capacity: Config.Workers
// or GOMAXPROCS.
func (s *Service) computeWorkers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// gate bounds concurrent local cell computation to computeWorkers when
// the node is clustered. Without it, a clustered sweep's widened
// fan-out (sized for network-bound forwards) would also widen local
// compute; with it, at most computeWorkers cells compute here at once
// while any number of forwards stay in flight. Unclustered, gate is
// the identity — the single-node path is untouched.
func (s *Service) gate(ctx context.Context, compute func() (json.RawMessage, error)) func() (json.RawMessage, error) {
	if s.compSem == nil {
		return compute
	}
	return func() (json.RawMessage, error) {
		select {
		case s.compSem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-s.compSem }()
		return compute()
	}
}

// cellFlight is one in-flight resolution of a cell on this node;
// concurrent callers for the same key share it instead of duplicating
// the work (runner.Memo alone has no in-flight dedupe — two concurrent
// misses both compute).
type cellFlight struct {
	done chan struct{}
	raw  json.RawMessage
	hit  bool
	err  error
}

// singleflightCell coalesces concurrent same-cell work on this node:
// the first caller leads (runs fn), the rest wait and share its
// result. A waiter whose leader failed claims leadership and retries
// rather than inheriting the failure — the leader may have lost to a
// transient fault the waiter would not hit. Together with the
// origin-side forward singleflight in cluster.ExecCell, this is what
// makes "every cell computes exactly once fleet-wide" hold even when
// the same cell is demanded concurrently on several nodes: each node
// resolves it at most once, and all but the owner resolve it by
// forwarding or from cache.
func (s *Service) singleflightCell(ctx context.Context, key string, fn func() (json.RawMessage, bool, error)) (json.RawMessage, bool, error) {
	for {
		s.flightMu.Lock()
		if f, ok := s.flights[key]; ok {
			s.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.raw, f.hit, nil
			}
			continue
		}
		f := &cellFlight{done: make(chan struct{})}
		if s.flights == nil {
			s.flights = map[string]*cellFlight{}
		}
		s.flights[key] = f
		s.flightMu.Unlock()
		f.raw, f.hit, f.err = fn()
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
		return f.raw, f.hit, f.err
	}
}

// memoCell is the single path every memoizable cell (classify spec,
// sweep cell) goes through: local cache, then the ring. A remote-owned
// cell is forwarded to its owner; on any remote failure the cell falls
// back to local compute — health degradation never fails a job, it
// only moves work. Unclustered, this is exactly runner.Memo.
func (s *Service) memoCell(ctx context.Context, slug string, payload any, compute func() (json.RawMessage, error)) (json.RawMessage, bool, error) {
	if !s.cluster.Enabled() {
		return runner.Memo(s.cache, slug, payload, compute)
	}
	key, err := runner.Key(slug, payload)
	if err != nil {
		return nil, false, err
	}
	return s.singleflightCell(ctx, slug+"\x00"+key, func() (json.RawMessage, bool, error) {
		if raw, ok := s.cache.LoadRaw(slug, key); ok {
			return raw, true, nil
		}
		if owner, local := s.cluster.Owner(key); !local {
			if raw, hit, rerr := s.remoteCell(ctx, owner, slug, payload, key, compute); rerr == nil {
				return raw, hit, nil
			}
			// Remote owner unreachable after retries: compute locally below.
		}
		return runner.Memo(s.cache, slug, payload, s.gate(ctx, compute))
	})
}

// cellResult is one resolution of a remote cell, by whichever path won.
type cellResult struct {
	raw    json.RawMessage
	hit    bool
	err    error
	stolen bool // resolved by local compute, already in the local cache
}

// remoteCell forwards one cell to owner, racing a steal pass against a
// straggling forward: after StealAfter the cell is pulled from the
// owner's cache (it may have finished but the response got lost) and,
// failing that, computed locally. First result wins. Successful remote
// results are written through to the local cache (cross-node fill), so
// the next lookup — this job's retry, another job, paperbench on the
// same cache dir — replays as a local hit.
func (s *Service) remoteCell(ctx context.Context, owner, slug string, payload any, key string, compute func() (json.RawMessage, error)) (json.RawMessage, bool, error) {
	enc, err := json.Marshal(payload)
	if err != nil {
		return nil, false, fmt.Errorf("service: encoding cell payload: %w", err)
	}
	m := metaFrom(ctx)
	creq := cluster.CellRequest{Slug: slug, Payload: enc, Key: key}
	fm := cluster.ForwardMeta{TraceID: m.jobID, Priority: m.priority, IdemKey: cellIdemKey(slug, key, m)}

	_, sp := obs.Start(ctx, "cluster.forward")
	sp.Str("owner", owner)
	sp.Str("slug", slug)
	defer sp.End()

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	primary := make(chan cellResult, 1)
	go func() {
		raw, hit, ferr := s.cluster.ExecCell(fctx, owner, creq, fm)
		primary <- cellResult{raw: raw, hit: hit, err: ferr}
	}()

	finish := func(r cellResult) (json.RawMessage, bool, error) {
		if r.err != nil {
			sp.Err(r.err)
			return nil, false, r.err
		}
		if !r.stolen {
			if serr := s.cache.StoreRaw(slug, key, r.raw); serr == nil {
				s.cluster.NoteFill()
			}
		}
		sp.Bool("hit", r.hit)
		return r.raw, r.hit, nil
	}

	var stealC <-chan time.Time
	if d := s.cluster.StealAfterDelay(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		stealC = t.C
	}

	select {
	case r := <-primary:
		return finish(r)
	case <-ctx.Done():
		return nil, false, ctx.Err()
	case <-stealC:
	}

	// Straggler: steal the cell. Pull first (cheap, and the owner may
	// have finished the work even if the forward's response is stuck),
	// then local compute through runner.Memo (which stores the result,
	// so a late-arriving primary changes nothing).
	s.cluster.NoteSteal()
	sp.Bool("steal", true)
	second := make(chan cellResult, 1)
	go func() {
		pullTimeout := s.cluster.StealAfterDelay()
		if pullTimeout > time.Second {
			pullTimeout = time.Second
		}
		pctx, pcancel := context.WithTimeout(fctx, pullTimeout)
		raw, ok, _ := s.cluster.PullCache(pctx, owner, slug, key)
		pcancel()
		if ok {
			second <- cellResult{raw: raw, hit: true}
			return
		}
		raw2, hit, cerr := runner.Memo(s.cache, slug, payload, s.gate(fctx, compute))
		second <- cellResult{raw: raw2, hit: hit, err: cerr, stolen: true}
	}()
	select {
	case r := <-primary:
		if r.err == nil {
			return finish(r)
		}
		// Forward failed after the steal launched: the steal is now the
		// only path; wait it out.
		select {
		case r2 := <-second:
			return finish(r2)
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	case r := <-second:
		if r.err == nil {
			return finish(r)
		}
		// Steal failed (local compute error is authoritative only if the
		// forward also fails); give the primary its chance.
		select {
		case r2 := <-primary:
			if r2.err == nil {
				return finish(r2)
			}
			return finish(r) // surface the local compute error
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// cellOut is the owner-side result of one forwarded cell.
type cellOut struct {
	raw json.RawMessage
	hit bool
}

// execCellLocal validates and executes one forwarded cell on this node,
// through the same supervision, task labels, memoization, and compute
// gate a locally-originated cell gets — fault injection, slow-task
// logging, and retry policy treat a cell identically wherever it runs.
// Never consults the ring (see the loop-freedom invariant above).
func (s *Service) execCellLocal(ctx context.Context, creq cluster.CellRequest) (json.RawMessage, bool, error) {
	var (
		label   string
		payload any
		compute func(tctx context.Context) (json.RawMessage, error)
	)
	switch creq.Slug {
	case classifySlug:
		var spec ClassifySpec
		if err := strictUnmarshal(creq.Payload, &spec); err != nil {
			return nil, false, fmt.Errorf("%w: cell payload: %v", ErrBadRequest, err)
		}
		if err := spec.normalize(false, s.cfg.MaxSpecAccesses); err != nil {
			return nil, false, err
		}
		label = "classify/" + spec.Workload
		payload = spec
		compute = func(tctx context.Context) (json.RawMessage, error) { return s.classifyRaw(tctx, spec) }
	case mrcSlug:
		var spec MRCSpec
		if err := strictUnmarshal(creq.Payload, &spec); err != nil {
			return nil, false, fmt.Errorf("%w: cell payload: %v", ErrBadRequest, err)
		}
		if err := spec.normalize(false, s.cfg.MaxSpecAccesses, s.cfg.Tenant.MaxSampledSet); err != nil {
			return nil, false, err
		}
		label = "mrc/" + spec.Workload
		payload = spec
		compute = func(tctx context.Context) (json.RawMessage, error) { return s.mrcRaw(tctx, spec) }
	default:
		arts, err := experiments.Select([]string{creq.Slug})
		if err != nil || len(arts) != 1 || arts[0].Slug != creq.Slug {
			return nil, false, fmt.Errorf("%w: unknown cell slug %q", ErrBadRequest, creq.Slug)
		}
		var p experiments.Params
		if err := strictUnmarshal(creq.Payload, &p); err != nil {
			return nil, false, fmt.Errorf("%w: cell payload: %v", ErrBadRequest, err)
		}
		slug := creq.Slug
		label = "sweep/" + slug
		payload = p
		compute = func(tctx context.Context) (json.RawMessage, error) { return s.experimentRaw(tctx, slug, p) }
	}

	jobCtx := runner.WithOptions(ctx, s.supervision()...)
	slug := creq.Slug
	tasks := []runner.Task[cellOut]{runner.NewTask(label, func(tctx context.Context) (cellOut, error) {
		// The same flight key memoCell uses, so a forwarded execution
		// coalesces with concurrent local demand for the cell instead of
		// computing it a second time.
		key, kerr := runner.Key(slug, payload)
		if kerr != nil {
			return cellOut{}, kerr
		}
		raw, hit, err := s.singleflightCell(tctx, slug+"\x00"+key, func() (json.RawMessage, bool, error) {
			return runner.Memo(s.cache, slug, payload, s.gate(tctx, func() (json.RawMessage, error) {
				if cerr := tctx.Err(); cerr != nil {
					return nil, cerr
				}
				return compute(tctx)
			}))
		})
		return cellOut{raw: raw, hit: hit}, err
	})}
	out, err := runner.Map(jobCtx, tasks)
	if err != nil {
		return nil, false, err
	}
	return out[0].raw, out[0].hit, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, the same
// strictness the public handlers apply.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// classifyRaw computes one spec-path classification and returns the
// marshaled classifyArtifact — the exact bytes runner.Memo would have
// stored, so the local path, the forwarded path, and the cache agree
// byte for byte.
func (s *Service) classifyRaw(ctx context.Context, spec ClassifySpec) (json.RawMessage, error) {
	var buf bytes.Buffer
	st, err := runClassify(ctx, spec, trace.NewStreamBatcher(specStream(spec)), func(v any) error {
		enc, merr := json.Marshal(v)
		if merr != nil {
			return fmt.Errorf("service: encoding result line: %w", merr)
		}
		buf.Write(enc)
		buf.WriteByte('\n')
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.records.Add(st.Records)
	return json.Marshal(classifyArtifact{Body: buf.Bytes(), Stats: st, Summary: true})
}

// experimentRaw computes one experiment cell and returns its marshaled
// result.
func (s *Service) experimentRaw(ctx context.Context, slug string, p experiments.Params) (json.RawMessage, error) {
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	v, err := experiments.RunArtifact(slug, p)
	if err != nil {
		return nil, err
	}
	enc, merr := json.Marshal(v)
	if merr != nil {
		return nil, fmt.Errorf("service: encoding %s result: %w", slug, merr)
	}
	s.records.Add(p.Instructions)
	return enc, nil
}

// handleClusterCell serves POST /v1/cluster/cell: execute one cell on
// this node and return its raw result. Internal (peer-to-peer) but
// held to the public endpoints' discipline: brownout-gated (the
// forwarded X-Mct-Priority decides survival at the low-priority shed
// level), admission-bounded per origin node, idempotency-wrapped by
// the route registration. The X-Mct-Trace-Id header threads the
// origin's job trace through this node's spans.
func (s *Service) handleClusterCell(w http.ResponseWriter, r *http.Request) {
	if s.shed(w, r, false) {
		return
	}
	origin := clientID(r)
	ctx := r.Context()
	if tid := r.Header.Get(cluster.TraceIDHeader); tid != "" {
		ctx = obs.Inject(ctx, s.ring, tid)
	}
	ctx, root := obs.Start(ctx, "cluster.cell")
	root.Str("origin", origin)
	defer root.End()

	release, err := s.admit(ctx, origin)
	if err != nil {
		root.Err(err)
		writeErr(w, err)
		return
	}
	defer release()

	var creq cluster.CellRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&creq); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding cell: %v", ErrBadRequest, err))
		return
	}
	root.Str("slug", creq.Slug)
	raw, hit, err := s.execCellLocal(ctx, creq)
	if err != nil {
		root.Err(err)
		writeErr(w, err)
		return
	}
	root.Bool("hit", hit)
	if self := s.cluster.Self(); self != "" {
		w.Header().Set(cluster.NodeHeader, self)
	}
	disposition := "miss"
	if hit {
		disposition = "hit"
	}
	w.Header().Set(cluster.CacheHeader, disposition)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

// handleCacheGet serves GET /v1/cache/{key}?slug=: a peer pulling a
// finished cell instead of recomputing it. A pure cache read — no
// admission, no shed, no compute ever triggered — so it stays cheap
// and available even when this node is saturated, exactly when peers
// most want to pull rather than forward.
func (s *Service) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	slug := r.URL.Query().Get("slug")
	if slug == "" || !validMemoKey(key) {
		writeErr(w, fmt.Errorf("%w: cache get needs a hex key path and a slug query", ErrBadRequest))
		return
	}
	raw, ok := s.cache.LoadRaw(slug, key)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf("no cached result for %s/%s", slug, key[:16]), Status: http.StatusNotFound})
		return
	}
	if self := s.cluster.Self(); self != "" {
		w.Header().Set(cluster.NodeHeader, self)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

// validMemoKey checks the shape runner.Key produces: 64 hex chars.
func validMemoKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
