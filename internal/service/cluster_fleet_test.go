package service

// In-process fleet tests: several complete Services, each with its own
// cache and cluster membership, wired over real TCP listeners. These
// are the cluster subsystem's acceptance tests — byte-identity with
// single-node output, zero duplicate computation, steal rescue,
// health-driven degradation, and the chaos smoke that `make
// cluster-smoke` runs under the race detector.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/runner"
)

// fleetNode is one member of an in-process fleet.
type fleetNode struct {
	svc  *Service
	cl   *cluster.Cluster
	hs   *http.Server
	addr string // host:port, the ring member name
	url  string
}

// bootFleet starts n complete nodes. All listeners are opened before
// any cluster is built so every node knows the full (final) membership
// up front — the static-peer-list deployment model. The optional hooks
// adjust one node's service config, cluster config, or wrap its
// listener (chaos injection) / handler (latency middleware).
func bootFleet(t *testing.T, n int,
	cfgMut func(i int, cfg *Config),
	clMut func(i int, cfg *cluster.Config),
	wrapLn func(i int, ln net.Listener) net.Listener,
	wrapH func(i int, h http.Handler) http.Handler,
) []*fleetNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		ccfg := cluster.Config{
			Self:          addrs[i],
			Peers:         addrs,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  2 * time.Second,
		}
		if clMut != nil {
			clMut(i, &ccfg)
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			CacheDir:      t.TempDir() + "/cache",
			CheckpointDir: t.TempDir() + "/ckpt",
			Cluster:       cl,
		}
		if cfgMut != nil {
			cfgMut(i, &cfg)
		}
		s := New(cfg)
		var h http.Handler = s.Handler()
		if wrapH != nil {
			h = wrapH(i, h)
		}
		hs := &http.Server{Handler: h}
		ln := lns[i]
		if wrapLn != nil {
			ln = wrapLn(i, ln)
		}
		go func() { _ = hs.Serve(ln) }()
		cl.Start()
		nodes[i] = &fleetNode{svc: s, cl: cl, hs: hs, addr: addrs[i], url: "http://" + addrs[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.hs.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		for _, nd := range nodes {
			if err := nd.svc.Drain(ctx); err != nil {
				t.Errorf("drain %s: %v", nd.addr, err)
			}
		}
	})
	return nodes
}

// seedSweepBody builds a seeded fig2 sweep: nSeeds cells at tiny scale.
func seedSweepBody(nSeeds int, accesses uint64) string {
	seeds := make([]string, nSeeds)
	for i := range seeds {
		seeds[i] = fmt.Sprint(i + 1)
	}
	return fmt.Sprintf(`{"experiments":["fig2"],"accesses":%d,"instructions":%d,"seeds":[%s]}`,
		accesses, accesses, strings.Join(seeds, ","))
}

// fleetMissTotal sums memo-cache misses across the fleet — the number
// of cells actually computed anywhere. Equality with the cell count is
// the zero-duplicate-computation property.
func fleetMissTotal(nodes []*fleetNode) uint64 {
	var total uint64
	for _, nd := range nodes {
		_, m := nd.svc.Cache().Stats()
		total += m
	}
	return total
}

// TestClusterHeaderContractsAgree pins the cross-package header names
// the forwarding protocol depends on. cluster mirrors these constants
// (it cannot import service), so drift would silently break priority
// and idempotency propagation.
func TestClusterHeaderContractsAgree(t *testing.T) {
	if cluster.PriorityHeader != PriorityHeader {
		t.Errorf("cluster.PriorityHeader = %q, service.PriorityHeader = %q", cluster.PriorityHeader, PriorityHeader)
	}
	if client.IdempotencyHeader != IdemHeader {
		t.Errorf("client.IdempotencyHeader = %q, service.IdemHeader = %q", client.IdempotencyHeader, IdemHeader)
	}
}

// TestFleetSweepByteIdenticalNoDuplicates is the core distribution
// property: a 3-node fleet executes a seeded sweep with remote
// forwarding and cross-node cache fill, produces byte-identical NDJSON
// to a single-node run, computes every cell exactly once fleet-wide,
// and replays entirely from the origin's cache afterwards. It also
// checks trace propagation: peers hold spans under the origin's job ID.
func TestFleetSweepByteIdenticalNoDuplicates(t *testing.T) {
	const cells = 24
	body := seedSweepBody(cells, 200)

	// Single-node reference (no cluster at all).
	_, ref := newTestService(t, Config{})
	rr := postJSON(t, ref.URL+"/v1/sweep", body)
	refBytes := readAll(t, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep: status %d: %s", rr.StatusCode, refBytes)
	}

	nodes := bootFleet(t, 3, nil, nil, nil, nil)
	fr := postJSON(t, nodes[0].url+"/v1/sweep", body)
	fleetBytes := readAll(t, fr.Body)
	fr.Body.Close()
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep: status %d: %s", fr.StatusCode, fleetBytes)
	}
	jobID := fr.Header.Get("X-Mct-Job")

	if !bytes.Equal(refBytes, fleetBytes) {
		t.Errorf("fleet NDJSON differs from single-node:\nsingle: %s\nfleet:  %s", refBytes, fleetBytes)
	}
	cs := nodes[0].cl.Counters()
	if cs.Forwards == 0 {
		t.Error("coordinator forwarded nothing — the ring routed every cell locally, distribution untested")
	}
	if cs.CacheFills == 0 {
		t.Error("no cross-node cache fills — forwarded results were not written through")
	}
	if got := fleetMissTotal(nodes); got != cells {
		t.Errorf("fleet computed %d cells for a %d-cell sweep (duplicate or lost computation)", got, cells)
	}

	// Replay: the origin now holds every cell (local computes + write-
	// through fills), so a rerun is all local hits, no new forwards, and
	// byte-identical again.
	fwdBefore := nodes[0].cl.Counters().Forwards
	r2 := postJSON(t, nodes[0].url+"/v1/sweep", body)
	replay := readAll(t, r2.Body)
	r2.Body.Close()
	if !bytes.Equal(refBytes, replay) {
		t.Error("replay NDJSON differs from the original")
	}
	if got := fleetMissTotal(nodes); got != cells {
		t.Errorf("replay recomputed: fleet misses %d, want still %d", got, cells)
	}
	if after := nodes[0].cl.Counters().Forwards; after != fwdBefore {
		t.Errorf("replay forwarded %d cells despite local fills", after-fwdBefore)
	}

	// Trace propagation: a peer that executed forwarded cells serves
	// spans for the origin's job ID even though it has no job record.
	peerSpans := 0
	for _, nd := range nodes[1:] {
		resp, err := http.Get(nd.url + "/v1/trace/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		tb := readAll(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && bytes.Contains(tb, []byte("cluster.cell")) {
			peerSpans++
		}
	}
	if peerSpans == 0 {
		t.Error("no peer holds cluster.cell spans under the origin job ID — trace propagation broken")
	}
}

// TestFleetForwardPropagatesCallerMeta drives a spec-path classify
// (one request = one cell) whose cell is remote-owned and asserts the
// owner saw the CALLER's idempotency key and priority — the
// whole-request forward contract, end to end through the service.
func TestFleetForwardPropagatesCallerMeta(t *testing.T) {
	var mu sync.Mutex
	seen := map[string][]string{} // header -> values observed at any node's cell endpoint
	record := func(r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		for _, h := range []string{IdemHeader, PriorityHeader, cluster.TraceIDHeader} {
			if v := r.Header.Get(h); v != "" {
				seen[h] = append(seen[h], v)
			}
		}
	}
	wrapH := func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cluster/cell" {
				record(r)
			}
			h.ServeHTTP(w, r)
		})
	}
	nodes := bootFleet(t, 2, nil, nil, nil, wrapH)
	w := anyWorkload(t)

	// Walk spec seeds until the cell lands on the remote node, so the
	// request is guaranteed to forward.
	var spec string
	for seed := uint64(1); seed < 200; seed++ {
		cand := fmt.Sprintf(`{"workload":%q,"accesses":4000,"size_kb":8,"assoc":2,"seed":%d}`, w, seed)
		var cs ClassifySpec
		if err := json.Unmarshal([]byte(cand), &cs); err != nil {
			t.Fatal(err)
		}
		if err := cs.normalize(false, 0); err != nil {
			t.Fatal(err)
		}
		key, err := runner.Key(classifySlug, cs)
		if err != nil {
			t.Fatal(err)
		}
		if owner, local := nodes[0].cl.Owner(key); !local && owner == nodes[1].addr {
			spec = cand
			break
		}
	}
	if spec == "" {
		t.Fatal("no remote-owned classify spec found in 200 seeds")
	}

	req, err := http.NewRequest("POST", nodes[0].url+"/v1/classify", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(IdemHeader, "caller-chose-this-key")
	req.Header.Set(PriorityHeader, "low")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: status %d: %s", resp.StatusCode, b)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen[IdemHeader]) == 0 {
		t.Fatal("owner never saw a forwarded cell")
	}
	for _, v := range seen[IdemHeader] {
		if v != "caller-chose-this-key" {
			t.Errorf("forwarded idempotency key = %q, want the caller's key unchanged", v)
		}
	}
	for _, v := range seen[PriorityHeader] {
		if v != "low" {
			t.Errorf("forwarded priority = %q, want low", v)
		}
	}
	if len(seen[cluster.TraceIDHeader]) == 0 {
		t.Error("forwarded cell carried no trace ID")
	}
}

// TestFleetCacheFillRaceConverges races the same cell on both nodes of
// a 2-node fleet (satellite d): concurrent callers on the non-owner
// coalesce into ONE forward (the singleflight), the owner computes at
// most once itself, every caller gets byte-identical bytes, and both
// nodes afterwards replay the one stored result identically.
func TestFleetCacheFillRaceConverges(t *testing.T) {
	nodes := bootFleet(t, 2, nil, nil, nil, nil)

	// Find a cell owned by node 1 so node 0 must forward.
	var p experiments.Params
	found := false
	for seed := uint64(1); seed < 200; seed++ {
		cand := experiments.Params{MemAccesses: 200, Instructions: 200, Seed: seed}
		key, err := runner.Key("fig2", cand)
		if err != nil {
			t.Fatal(err)
		}
		if owner, local := nodes[0].cl.Owner(key); !local && owner == nodes[1].addr {
			p, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no node-1-owned cell in 200 seeds")
	}

	const callersPerNode = 4
	results := make([][]byte, 2*callersPerNode)
	errs := make([]error, 2*callersPerNode)
	var wg sync.WaitGroup
	for n := 0; n < 2; n++ {
		for c := 0; c < callersPerNode; c++ {
			wg.Add(1)
			go func(idx int, s *Service) {
				defer wg.Done()
				raw, _, err := s.memoCell(context.Background(), "fig2", p, func() (json.RawMessage, error) {
					return s.experimentRaw(context.Background(), "fig2", p)
				})
				results[idx], errs[idx] = raw, err
			}(n*callersPerNode+c, nodes[n].svc)
		}
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("caller %d result differs from caller 0:\n%s\nvs\n%s", i, results[0], results[i])
		}
	}
	// Convergence: the cell computed exactly once fleet-wide. The
	// non-owner's callers singleflight into one forward; on the owner,
	// concurrent local callers and the forwarded execution share one
	// cell flight, so only one of them runs the compute.
	if got := fleetMissTotal(nodes); got != 1 {
		t.Errorf("race computed the cell %d times across 2 nodes, want exactly 1", got)
	}
	if fwd := nodes[0].cl.Counters().Forwards; fwd > 1 {
		t.Errorf("non-owner issued %d forwards for one cell, want <= 1 (singleflight)", fwd)
	}

	// Both caches now hold the identical entry, and replay hits locally.
	key, _ := runner.Key("fig2", p)
	r0, ok0 := nodes[0].svc.Cache().LoadRaw("fig2", key)
	r1, ok1 := nodes[1].svc.Cache().LoadRaw("fig2", key)
	if !ok0 || !ok1 {
		t.Fatalf("stored result missing: node0=%v node1=%v", ok0, ok1)
	}
	if !bytes.Equal(r0, r1) {
		t.Errorf("stored results diverge:\nnode0: %s\nnode1: %s", r0, r1)
	}
	if !bytes.Equal(r0, results[0]) {
		t.Errorf("stored result differs from what callers got")
	}
}

// TestFleetStealRescuesStraggler wedges the owner's cell endpoint and
// asserts the work-stealing hedge completes the cell locally, fast,
// instead of waiting out the straggler.
func TestFleetStealRescuesStraggler(t *testing.T) {
	slow := 1500 * time.Millisecond
	wrapH := func(i int, h http.Handler) http.Handler {
		if i != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cluster/cell" {
				select {
				case <-time.After(slow):
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	}
	nodes := bootFleet(t, 2, nil, func(i int, cfg *cluster.Config) {
		cfg.StealAfter = 50 * time.Millisecond
		cfg.ForwardAttempts = 1
	}, nil, wrapH)

	var p experiments.Params
	found := false
	for seed := uint64(1); seed < 200; seed++ {
		cand := experiments.Params{MemAccesses: 200, Instructions: 200, Seed: seed}
		key, err := runner.Key("fig2", cand)
		if err != nil {
			t.Fatal(err)
		}
		if owner, local := nodes[0].cl.Owner(key); !local && owner == nodes[1].addr {
			p, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no node-1-owned cell in 200 seeds")
	}

	start := time.Now()
	raw, _, err := nodes[0].svc.memoCell(context.Background(), "fig2", p, func() (json.RawMessage, error) {
		return nodes[0].svc.experimentRaw(context.Background(), "fig2", p)
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty result")
	}
	if elapsed >= slow {
		t.Errorf("cell took %v — waited out the straggler instead of stealing", elapsed)
	}
	if got := nodes[0].cl.Counters().Steals; got == 0 {
		t.Error("steal counter is zero though the owner was wedged")
	}
	// The stolen result is in the local cache (runner.Memo stored it).
	key, _ := runner.Key("fig2", p)
	if _, ok := nodes[0].svc.Cache().LoadRaw("fig2", key); !ok {
		t.Error("stolen cell not in the local cache")
	}
}

// TestFleetEjectionComputesLocally kills a peer and asserts the
// survivor ejects it from the ring and completes a sweep entirely
// locally — health degradation moves work, it never fails jobs.
func TestFleetEjectionComputesLocally(t *testing.T) {
	nodes := bootFleet(t, 2, nil, func(i int, cfg *cluster.Config) {
		cfg.ProbeInterval = 20 * time.Millisecond
		cfg.FailThreshold = 2
		cfg.ForwardAttempts = 2
	}, nil, nil)

	// Kill node 1 outright (its Drain in cleanup is a no-op on a closed
	// server).
	_ = nodes[1].hs.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(nodes[0].cl.Ring().Peers()) == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := nodes[0].cl.Ring().Peers(); len(got) != 1 || got[0] != nodes[0].addr {
		t.Fatalf("ring after peer death = %v, want just self", got)
	}
	if nodes[0].cl.Counters().Ejections == 0 {
		t.Error("ejection counter is zero")
	}

	const cells = 6
	resp := postJSON(t, nodes[0].url+"/v1/sweep", seedSweepBody(cells, 200))
	body := readAll(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep with dead peer: status %d: %s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte(`"error"`)) {
		t.Fatalf("sweep lines carry errors:\n%s", body)
	}
	_, misses := nodes[0].svc.Cache().Stats()
	if misses != cells {
		t.Errorf("survivor computed %d cells, want all %d locally", misses, cells)
	}
}

// TestClusterChaosSmoke is the `make cluster-smoke` gate: a 3-node
// fleet runs a 200-cell sweep while one peer's listener injects
// connection resets. The job must complete, the fleet must compute
// every cell exactly once (cache-miss accounting), and the NDJSON must
// be byte-identical to a single-node run. Chaos is deterministic
// (seeded), so the schedule is reproducible; the resilient peer client
// plus the owner's idempotency store absorb the resets without
// recomputation.
func TestClusterChaosSmoke(t *testing.T) {
	const cells = 200
	body := seedSweepBody(cells, 200)

	_, ref := newTestService(t, Config{})
	rr := postJSON(t, ref.URL+"/v1/sweep", body)
	refBytes := readAll(t, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep: status %d", rr.StatusCode)
	}

	wrapLn := func(i int, ln net.Listener) net.Listener {
		if i != 2 {
			return ln
		}
		return faultinject.NetConfig{ResetProb: 0.05, Seed: 7}.Listener(ln)
	}
	nodes := bootFleet(t, 3, nil, nil, wrapLn, nil)

	fr := postJSON(t, nodes[0].url+"/v1/sweep", body)
	fleetBytes := readAll(t, fr.Body)
	fr.Body.Close()
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep under chaos: status %d: %s", fr.StatusCode, fleetBytes)
	}
	if !bytes.Equal(refBytes, fleetBytes) {
		t.Errorf("chaos-run NDJSON differs from single-node reference")
	}
	if bytes.Contains(fleetBytes, []byte(`"error"`)) {
		t.Errorf("sweep lines carry errors under chaos:\n%s", fleetBytes)
	}
	if got := fleetMissTotal(nodes); got != cells {
		t.Errorf("fleet computed %d cells for a %d-cell sweep under chaos (duplicates or losses)", got, cells)
	}
	cs := nodes[0].cl.Counters()
	if cs.Forwards == 0 {
		t.Error("no forwards happened — chaos smoke exercised nothing")
	}
	t.Logf("chaos smoke: forwards=%d forward_fails=%d fills=%d ejections=%d restores=%d",
		cs.Forwards, cs.ForwardFails, cs.CacheFills, cs.Ejections, cs.Restores)
}

// TestClusterScalingBench measures 3-node fleet throughput against a
// single node and writes BENCH_pr9.json. Gated behind MCT_BENCH_CLUSTER
// because it is a benchmark, not a correctness test.
//
// Methodology (one-core container): per-cell occupancy is modeled with
// an injected 60ms delay (the I/O-bound proxy — real cell compute at
// this scale is ~10ms of CPU, which a single core cannot parallelize).
// The single-node baseline runs Workers=1, a serial pool: cells pay
// the delay back to back. The fleet runs three nodes at Workers=1
// each; the coordinator's widened fan-out overlaps cell occupancy
// across in-flight forwards and nodes, which is exactly the
// distribution layer's job. On a multi-core host the same harness
// measures CPU-bound scaling instead, with the per-node compute gate
// bounding local work.
func TestClusterScalingBench(t *testing.T) {
	if os.Getenv("MCT_BENCH_CLUSTER") == "" {
		t.Skip("set MCT_BENCH_CLUSTER=1 to run the cluster scaling bench")
	}
	const cells = 24
	const delay = 60 * time.Millisecond
	body := seedSweepBody(cells, 200)

	restore := faultinject.Install(faultinject.Delay("sweep/", delay))
	defer restore()

	_, ref := newTestService(t, Config{Workers: 1})
	singleStart := time.Now()
	rr := postJSON(t, ref.URL+"/v1/sweep", body)
	refBytes := readAll(t, rr.Body)
	rr.Body.Close()
	singleElapsed := time.Since(singleStart)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("single-node sweep: status %d", rr.StatusCode)
	}

	nodes := bootFleet(t, 3, func(i int, cfg *Config) { cfg.Workers = 1 }, nil, nil, nil)
	fleetStart := time.Now()
	fr := postJSON(t, nodes[0].url+"/v1/sweep", body)
	fleetBytes := readAll(t, fr.Body)
	fr.Body.Close()
	fleetElapsed := time.Since(fleetStart)
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("fleet sweep: status %d", fr.StatusCode)
	}

	identical := bytes.Equal(refBytes, fleetBytes)
	speedup := singleElapsed.Seconds() / fleetElapsed.Seconds()
	t.Logf("single=%v fleet=%v speedup=%.2fx byte_identical=%v", singleElapsed, fleetElapsed, speedup, identical)
	if !identical {
		t.Error("fleet NDJSON differs from single-node under the bench workload")
	}
	if speedup < 2.2 {
		t.Errorf("fleet speedup %.2fx < 2.2x", speedup)
	}

	if out := os.Getenv("MCT_BENCH_CLUSTER_OUT"); out != "" {
		report := map[string]any{
			"schema":             1,
			"bench":              "cluster-scaling",
			"nodes":              3,
			"cells":              cells,
			"cell_delay_ms":      delay.Milliseconds(),
			"workers_per_node":   1,
			"gomaxprocs":         runtime.GOMAXPROCS(0),
			"single_elapsed_sec": singleElapsed.Seconds(),
			"fleet_elapsed_sec":  fleetElapsed.Seconds(),
			"speedup":            speedup,
			"byte_identical":     identical,
			"forwards":           nodes[0].cl.Counters().Forwards,
			"methodology": "one-core container: per-cell occupancy modeled as a 60ms injected delay " +
				"(I/O-bound proxy); single-node baseline is a serial Workers=1 pool, the fleet overlaps " +
				"occupancy across 3 nodes and in-flight forwards. See DESIGN.md §13.",
		}
		enc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("bench report written to %s", out)
	}
}
