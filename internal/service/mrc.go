package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/mem"
	"repro/internal/mrc"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/workload"
)

// mrcSlug keys spec-path MRC profiles in the memo cache, sharing the
// cache (and, clustered, the hash ring) with classify and sweep cells.
const mrcSlug = "svc-mrc"

// maxMRCSizes bounds how many cache sizes one request may profile: each
// size costs a full classifying cache + oracle, so the list is the
// request's compute knob.
const maxMRCSizes = 16

// MRCSpec describes one miss-ratio-curve request: which access stream
// to profile (a named workload, or the uploaded trace), the SHARDS
// sampling parameters, and the cache-geometry ladder to split
// conflict/capacity at. The normalized spec is the memoization payload,
// so every field must deterministically change the result — which is
// also why the tenant is NOT part of the spec: two tenants asking the
// same question share one cached answer.
type MRCSpec struct {
	// Workload names a synthetic benchmark; empty on the upload path.
	Workload string `json:"workload,omitempty"`
	// Accesses bounds the workload stream (spec path only).
	Accesses uint64 `json:"accesses,omitempty"`
	// Seed feeds the workload generator.
	Seed uint64 `json:"seed,omitempty"`

	// SizesKB is the ascending ladder of cache sizes to report points
	// at (default 4..256 KB doubling). Each size gets its own
	// classifier run for the MCT conflict/capacity split.
	SizesKB []int `json:"sizes_kb,omitempty"`
	// Assoc, LineSize, TagBits, Index, IndexSeed describe the per-size
	// cache geometry, exactly as in ClassifySpec.
	Assoc     int    `json:"assoc,omitempty"`
	LineSize  int    `json:"line,omitempty"`
	TagBits   int    `json:"tag_bits,omitempty"`
	Index     string `json:"index,omitempty"`
	IndexSeed uint64 `json:"index_seed,omitempty"`

	// Rate is the initial SHARDS sampling rate in (0, 1] (0 = the
	// profiler default, 0.01). MaxSampled caps the tracked-line set,
	// bounding profiler memory (0 = the profiler default; subject to
	// the per-tenant cap).
	Rate       float64 `json:"rate,omitempty"`
	MaxSampled int     `json:"max_sampled,omitempty"`
}

// normalize fills defaults and validates. upload marks the trace-upload
// path; maxSet is the tenant quota's sampled-set cap (0 = profiler
// default only).
func (sp *MRCSpec) normalize(upload bool, maxAccesses uint64, maxSet int) error {
	if len(sp.SizesKB) == 0 {
		sp.SizesKB = []int{4, 8, 16, 32, 64, 128, 256}
	}
	if len(sp.SizesKB) > maxMRCSizes {
		return fmt.Errorf("%w: %d sizes requested, limit %d", ErrBadRequest, len(sp.SizesKB), maxMRCSizes)
	}
	slices.Sort(sp.SizesKB)
	sp.SizesKB = slices.Compact(sp.SizesKB)
	if sp.Assoc == 0 {
		sp.Assoc = 2
	}
	if sp.LineSize == 0 {
		sp.LineSize = 64
	}
	scheme, err := cache.ParseIndexScheme(sp.Index)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sp.Index = scheme.String()
	if sp.TagBits < 0 {
		return fmt.Errorf("%w: tag_bits must be >= 0", ErrBadRequest)
	}
	for _, kb := range sp.SizesKB {
		if kb <= 0 {
			return fmt.Errorf("%w: sizes_kb entries must be positive, got %d", ErrBadRequest, kb)
		}
		if err := sp.cacheConfig(kb).Validate(); err != nil {
			return fmt.Errorf("%w: size %dKB: %v", ErrBadRequest, kb, err)
		}
	}
	if sp.Rate == 0 {
		sp.Rate = mrc.DefaultRate
	}
	if sp.Rate <= 0 || sp.Rate > 1 {
		return fmt.Errorf("%w: rate %v outside (0, 1]", ErrBadRequest, sp.Rate)
	}
	if sp.MaxSampled < 0 {
		return fmt.Errorf("%w: max_sampled must be >= 0 (the service never profiles unbounded)", ErrBadRequest)
	}
	if sp.MaxSampled == 0 {
		sp.MaxSampled = mrc.DefaultMaxSampled
	}
	// The sampled set is the profiler's resident memory; the cap is a
	// quota dimension, so exceeding it is 429, not 400.
	setCap := mrc.DefaultMaxSampled
	if maxSet > 0 {
		setCap = maxSet
	}
	if sp.MaxSampled > setCap {
		return fmt.Errorf("%w: max_sampled %d exceeds the per-tenant sampled-set cap %d",
			ErrQuota, sp.MaxSampled, setCap)
	}
	if upload {
		if sp.Workload != "" {
			return fmt.Errorf("%w: workload is meaningless with an uploaded trace", ErrBadRequest)
		}
		return nil
	}
	if sp.Seed == 0 {
		sp.Seed = workload.DefaultSeed
	}
	if sp.Accesses == 0 {
		sp.Accesses = 100_000
	}
	if maxAccesses != 0 && sp.Accesses > maxAccesses {
		return fmt.Errorf("%w: accesses %d exceeds the service limit %d", ErrBadRequest, sp.Accesses, maxAccesses)
	}
	if _, ok := workload.ByName(sp.Workload); !ok {
		return fmt.Errorf("%w: unknown workload %q (valid: %s)",
			ErrBadRequest, sp.Workload, strings.Join(workload.Names(), ", "))
	}
	return nil
}

// cacheConfig maps the spec's geometry onto one ladder size.
func (sp MRCSpec) cacheConfig(kb int) cache.Config {
	scheme, _ := cache.ParseIndexScheme(sp.Index)
	return cache.Config{
		Name:      "L1D",
		Size:      kb * 1024,
		LineSize:  sp.LineSize,
		Assoc:     sp.Assoc,
		Indexing:  scheme,
		IndexSeed: sp.IndexSeed,
	}
}

// stream builds the access stream a normalized spec-path request
// describes.
func (sp MRCSpec) stream() trace.Stream {
	b, ok := workload.ByName(sp.Workload)
	if !ok {
		panic(fmt.Sprintf("service: workload %q vanished after validation", sp.Workload))
	}
	return trace.NewLimit(trace.NewMemOnly(b.Stream(sp.Seed)), sp.Accesses)
}

// mrcMCT is the per-size conflict/capacity split from the classifier's
// oracle: conflict+capacity+compulsory == misses <= accesses, counted
// on real-cache misses at that geometry.
type mrcMCT struct {
	Accesses   uint64  `json:"accesses"`
	Misses     uint64  `json:"misses"`
	Conflict   uint64  `json:"conflict"`
	Capacity   uint64  `json:"capacity"`
	Compulsory uint64  `json:"compulsory"`
	MissRatio  float64 `json:"miss_ratio"`
}

// mrcPoint is one NDJSON record of an MRC response: the SHARDS-sampled
// LRU miss-ratio estimate at a capacity, plus the exact simulated split
// at that geometry.
type mrcPoint struct {
	SizeKB    int     `json:"size_kb"`
	Lines     uint64  `json:"lines"`
	MissRatio float64 `json:"miss_ratio"`
	MCT       mrcMCT  `json:"mct"`
}

// MRCSummary is the trailing NDJSON record: the profiler's sampling
// telemetry, enough for a client to judge estimate quality.
type MRCSummary struct {
	Workload    string  `json:"workload,omitempty"`
	Accesses    uint64  `json:"accesses"`
	Sampled     uint64  `json:"sampled"`
	SampledSet  int     `json:"sampled_set"`
	Evicted     uint64  `json:"evicted"`
	RateInitial float64 `json:"rate_initial"`
	RateFinal   float64 `json:"rate_final"`
	Points      int     `json:"points"`
}

// mrcStats counts one profile's work for job accounting and tenant
// charging.
type mrcStats struct {
	Records uint64 `json:"records"`
	Emitted uint64 `json:"emitted"`
	Samples uint64 `json:"samples"`
}

// mrcArtifact is the memoized product of a spec-path MRC profile: the
// pre-rendered NDJSON body plus work counts, the same
// cached-bytes-for-byte-identity pattern as classifyArtifact.
type mrcArtifact struct {
	Body  []byte   `json:"body"`
	Stats mrcStats `json:"stats"`
}

// runMRC plays every memory access of src through one SHARDS profiler
// and one classifier run per requested size, a struct-of-arrays batch
// at a time: the batch's memory ops are compacted once, then fanned to
// the profiler and every run (which never mutate the shared slices).
// charge, when non-nil, is called once per batch with the newly
// sampled-reference count — the tenant quota hook; its error aborts
// the stream mid-flight. After the source drains cleanly, the points
// stream in ascending size order followed by the summary.
func runMRC(ctx context.Context, spec MRCSpec, src trace.BatchSource, emit func(v any) error, charge func(samples uint64) error) (mrcStats, error) {
	var st mrcStats
	prof := mrc.New(mrc.Config{Rate: spec.Rate, MaxSampled: spec.MaxSampled, LineSize: spec.LineSize})
	runs := make([]*classify.Run, len(spec.SizesKB))
	for i, kb := range spec.SizesKB {
		run, err := classify.NewRun(spec.cacheConfig(kb), spec.TagBits)
		if err != nil {
			return st, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		runs[i] = run
	}
	batch := trace.NewBatch(trace.DefaultBatchSize)
	addrs := make([]mem.Addr, 0, trace.DefaultBatchSize)
	stores := make([]bool, 0, trace.DefaultBatchSize)
	var lastSampled uint64
	for {
		if cerr := ctx.Err(); cerr != nil {
			return st, cerr
		}
		n := src.ReadBatch(batch, trace.DefaultBatchSize)
		if n == 0 {
			break
		}
		addrs, stores = addrs[:0], stores[:0]
		for i := 0; i < n; i++ {
			if batch.Op[i].IsMem() {
				addrs = append(addrs, batch.Addr[i])
				stores = append(stores, batch.Op[i] == trace.Store)
			}
		}
		prof.ObserveBatch(addrs)
		for _, run := range runs {
			run.AccessBatch(addrs, stores)
		}
		st.Records += uint64(len(addrs))
		if charge != nil {
			cur := prof.SampledRefs()
			if err := charge(cur - lastSampled); err != nil {
				return st, err
			}
			lastSampled = cur
		}
	}
	if err := src.Err(); err != nil {
		return st, err
	}
	ps := prof.Stats()
	st.Samples = ps.Sampled
	for i, kb := range spec.SizesKB {
		run := runs[i]
		lines := uint64(kb) * 1024 / uint64(spec.LineSize)
		compulsory, capacity, conflict := run.Oracle.Counts()
		misses := run.Acc.Misses()
		var mr float64
		if st.Records > 0 {
			mr = float64(misses) / float64(st.Records)
		}
		pt := mrcPoint{
			SizeKB:    kb,
			Lines:     lines,
			MissRatio: prof.MissRatio(lines),
			MCT: mrcMCT{
				Accesses:   st.Records,
				Misses:     misses,
				Conflict:   conflict,
				Capacity:   capacity,
				Compulsory: compulsory,
				MissRatio:  mr,
			},
		}
		if err := emit(struct {
			Point mrcPoint `json:"point"`
		}{pt}); err != nil {
			return st, err
		}
		st.Emitted++
	}
	sum := MRCSummary{
		Workload:    spec.Workload,
		Accesses:    st.Records,
		Sampled:     ps.Sampled,
		SampledSet:  ps.SampledSet,
		Evicted:     ps.Evicted,
		RateInitial: ps.RateInitial,
		RateFinal:   ps.RateFinal,
		Points:      len(spec.SizesKB),
	}
	if err := emit(struct {
		Summary MRCSummary `json:"summary"`
	}{sum}); err != nil {
		return st, err
	}
	st.Emitted++
	return st, nil
}

// mrcRaw computes one spec-path MRC profile and returns the marshaled
// mrcArtifact — the exact bytes runner.Memo stores, so local compute,
// forwarded cells, and cache replay agree byte for byte.
func (s *Service) mrcRaw(ctx context.Context, spec MRCSpec) (json.RawMessage, error) {
	var buf bytes.Buffer
	st, err := runMRC(ctx, spec, trace.NewStreamBatcher(spec.stream()), func(v any) error {
		enc, merr := json.Marshal(v)
		if merr != nil {
			return fmt.Errorf("service: encoding result line: %w", merr)
		}
		buf.Write(enc)
		buf.WriteByte('\n')
		return nil
	}, nil)
	if err != nil {
		return nil, err
	}
	s.records.Add(st.Records)
	s.mrcSamples.Add(st.Samples)
	return json.Marshal(mrcArtifact{Body: buf.Bytes(), Stats: st})
}

// mrcOut is mrcMemo's task result.
type mrcOut struct {
	raw json.RawMessage
	hit bool
}

// mrcMemo computes (or replays) one spec-path MRC profile through the
// cell path — local memo cache, then (clustered) the hash ring — under
// the service's supervision policy, so an MRC profile gets the same
// retries, deadline, and fault-injection treatment as a classify batch.
func (s *Service) mrcMemo(ctx context.Context, spec MRCSpec) (mrcArtifact, bool, error) {
	jobCtx := runner.WithOptions(ctx, s.supervision()...)
	tasks := []runner.Task[mrcOut]{runner.NewTask("mrc/"+spec.Workload, func(tctx context.Context) (mrcOut, error) {
		_, sp := obs.Start(tctx, "cache.lookup")
		sp.Str("workload", spec.Workload)
		raw, hit, err := s.memoCell(tctx, mrcSlug, spec, func() (json.RawMessage, error) {
			return s.mrcRaw(tctx, spec)
		})
		sp.Bool("hit", hit)
		sp.Err(err)
		sp.End()
		return mrcOut{raw: raw, hit: hit}, err
	})}
	out, err := runner.Map(jobCtx, tasks)
	if err != nil {
		return mrcArtifact{}, false, err
	}
	var art mrcArtifact
	if uerr := json.Unmarshal(out[0].raw, &art); uerr != nil {
		return mrcArtifact{}, out[0].hit, fmt.Errorf("service: decoding mrc artifact: %w", uerr)
	}
	return art, out[0].hit, nil
}

// handleMRC serves POST /v1/mrc. A JSON body is a workload spec,
// memoized through the shared cell path; any other body is a binary
// trace, profiled as it is read under the service's limits and the
// tenant's quota. Either way the response is NDJSON — per-size points,
// then a summary — and the job ID rides the X-Mct-Job header.
func (s *Service) handleMRC(w http.ResponseWriter, r *http.Request) {
	_ = http.NewResponseController(w).EnableFullDuplex()

	streaming := !strings.HasPrefix(r.Header.Get("Content-Type"), "application/json")
	if s.shed(w, r, streaming) {
		return
	}

	client := clientID(r)
	tenant, terr := tenantID(r)
	if terr != nil {
		writeErr(w, terr)
		return
	}
	id := s.jobs.NewID()
	ctx, root := obs.Start(obs.Inject(r.Context(), s.ring, id), "http.mrc")
	root.Str("client", client)
	root.Str("tenant", tenant)
	defer root.End()
	ctx = withReqMeta(ctx, reqMeta{jobID: id, idemKey: r.Header.Get(IdemHeader), priority: r.Header.Get(PriorityHeader)})
	r = r.WithContext(ctx)
	defer func(t0 time.Time) { s.hMRC.ObserveDuration(time.Since(t0)) }(time.Now())
	s.mrcReqs.Add(1)

	// Quota gate in front of admission: a tenant already over budget is
	// rejected before it can occupy an admission slot.
	if err := s.tenants.precheck(tenant); err != nil {
		s.quotaRejects.Add(1)
		root.Err(err)
		writeErr(w, err)
		return
	}

	release, err := s.admit(r.Context(), client)
	if err != nil {
		root.Err(err)
		writeErr(w, err)
		return
	}
	defer release()

	s.createJob(id, "mrc", client, r.Header.Get(IdemHeader))
	w.Header().Set("X-Mct-Job", id)

	if !streaming {
		s.mrcSpecRequest(w, r, id, tenant)
		return
	}
	s.mrcUploadRequest(w, r, id, tenant)
}

// mrcSpecRequest handles the JSON-spec flavor of /v1/mrc.
func (s *Service) mrcSpecRequest(w http.ResponseWriter, r *http.Request, id, tenant string) {
	var spec MRCSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		err = fmt.Errorf("%w: decoding spec: %v", ErrBadRequest, err)
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}
	if err := spec.normalize(false, s.cfg.MaxSpecAccesses, s.cfg.Tenant.MaxSampledSet); err != nil {
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}

	s.startJob(id, spec)
	art, hit, err := s.mrcMemo(r.Context(), spec)
	if err != nil {
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}
	var hits, misses uint64
	if hit {
		hits = 1
	} else {
		misses = 1
		// Charge only cold computes: a warm hit replays cached bytes
		// without reprocessing a single sample. Record-then-compare
		// semantics mean an over-budget result still serves — the NEXT
		// request hits the precheck.
		_ = s.tenants.charge(tenant, art.Stats.Samples, 0)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_, werr := w.Write(art.Body)
	s.finishJob(id, werr, art.Stats.Records, art.Stats.Emitted, hits, misses)
}

// countingReader counts bytes read from an upload body so ingest can be
// charged per batch. Single-goroutine: the trace reader and the charge
// callback both run on the request goroutine.
type countingReader struct {
	r        io.Reader
	n, taken uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// take returns the bytes read since the previous take.
func (c *countingReader) take() uint64 {
	d := c.n - c.taken
	c.taken = c.n
	return d
}

// mrcUploadRequest handles the binary-trace flavor of /v1/mrc: the body
// is an MCTR trace, profiled as it is read — never buffered, never
// memoized (unknown content), charged against the tenant per batch.
// Limit and quota violations mid-stream append a trailing error record.
func (s *Service) mrcUploadRequest(w http.ResponseWriter, r *http.Request, id, tenant string) {
	spec, err := mrcSpecFromQuery(r)
	if err == nil {
		err = spec.normalize(true, 0, s.cfg.Tenant.MaxSampledSet)
	}
	if err != nil {
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}

	// No spec in the journal: the trace bytes live only in this request
	// body, so the job is not re-drivable after a crash.
	s.startJob(id, nil)
	cr := &countingReader{r: r.Body}
	rd, err := trace.NewReaderContext(r.Context(), cr, s.cfg.Limits)
	if err != nil {
		if !errors.Is(err, trace.ErrTraceTooLarge) && !errors.Is(err, context.Canceled) {
			err = fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		s.finishJob(id, err, 0, 0, 0, 0)
		writeErrJob(w, err, id)
		return
	}

	nw := newNDJSONWriter(w)
	_, sp := obs.Start(r.Context(), "mrc.upload")
	st, err := runMRC(r.Context(), spec, rd, nw.emit, func(samples uint64) error {
		nb := cr.take()
		s.mrcSamples.Add(samples)
		s.mrcIngest.Add(nb)
		if cerr := s.tenants.charge(tenant, samples, nb); cerr != nil {
			s.quotaRejects.Add(1)
			return cerr
		}
		return nil
	})
	sp.Int("records", int64(st.Records))
	sp.Err(err)
	sp.End()
	if err != nil {
		_ = nw.emit(errorBody{Error: err.Error(), Status: statusFor(err)})
		s.finishJob(id, err, st.Records, nw.emitted, 0, 0)
		return
	}
	s.records.Add(st.Records)
	s.finishJob(id, nil, st.Records, nw.emitted, 0, 0)
}

// mrcSpecFromQuery maps the upload path's query parameters onto a spec.
// sizes_kb is comma-separated ("sizes_kb=4,8,32").
func mrcSpecFromQuery(r *http.Request) (MRCSpec, error) {
	var spec MRCSpec
	q := r.URL.Query()
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{"assoc", &spec.Assoc},
		{"line", &spec.LineSize},
		{"tag_bits", &spec.TagBits},
		{"max_sampled", &spec.MaxSampled},
	} {
		if v := q.Get(f.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return spec, fmt.Errorf("%w: query %s=%q is not an integer", ErrBadRequest, f.name, v)
			}
			*f.dst = n
		}
	}
	if v := q.Get("sizes_kb"); v != "" {
		for _, part := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return spec, fmt.Errorf("%w: query sizes_kb entry %q is not an integer", ErrBadRequest, part)
			}
			spec.SizesKB = append(spec.SizesKB, n)
		}
	}
	if v := q.Get("rate"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return spec, fmt.Errorf("%w: query rate=%q is not a number", ErrBadRequest, v)
		}
		spec.Rate = f
	}
	spec.Index = q.Get("index")
	if v := q.Get("index_seed"); v != "" {
		n, err := strconv.ParseUint(v, 0, 64)
		if err != nil {
			return spec, fmt.Errorf("%w: query index_seed=%q is not an unsigned integer", ErrBadRequest, v)
		}
		spec.IndexSeed = n
	}
	return spec, nil
}
