package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSweepKillAndResume exercises the service's crash/cancel-resume
// contract: a sweep interrupted mid-flight leaves exactly its finished
// cells in the memoization cache (checkpointed per cell, not per sweep),
// and resubmitting the same sweep recomputes ONLY the unfinished cells.
// The assertion rides the cache-hit counters — per job and on /metrics —
// never wall-clock heuristics.
//
// The interruption is staged in two deterministic steps, because a real
// SIGKILL lands at an arbitrary instant and would make the set of
// finished cells racy:
//
//  1. a canceled submission shows a killed sweep computes nothing new
//     once cancellation lands (cache misses stay put), and
//  2. a single-cell sweep of fig2 constructs the exact post-kill state
//     "fig2 finished, fig1 never ran" that an interruption between
//     cells leaves behind.
//
// The resubmission of the full sweep then must hit the cache for fig2
// and recompute only fig1.
func TestSweepKillAndResume(t *testing.T) {
	s, srv := newTestService(t, Config{})
	full := `{"experiments":["fig1","fig2"],"accesses":20000,"instructions":20000}`

	// Step 1: the "kill" — a sweep whose context is already dead by the
	// time its cells would run. Nothing may be computed or cached.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/sweep", strings.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, rerr := http.DefaultClient.Do(req); rerr == nil {
		resp.Body.Close()
	}
	// The handler may still be unwinding after the client gave up; wait
	// for the admission gate to report idle before sampling counters.
	idleCtx, idleCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer idleCancel()
	if err := s.adm.AwaitIdle(idleCtx); err != nil {
		t.Fatal(err)
	}
	if hits, misses := s.Cache().Stats(); hits != 0 || misses != 0 {
		// A canceled sweep that raced far enough to compute a cell is the
		// arbitrary-instant case; this test wants the clean-kill state.
		t.Fatalf("canceled sweep touched the cache (hits %d, misses %d)", hits, misses)
	}

	// Step 2: construct the post-kill state — fig2 finished before the
	// kill, fig1 did not.
	r1 := postJSON(t, srv.URL+"/v1/sweep", `{"experiments":["fig2"],"accesses":20000,"instructions":20000}`)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("seeding sweep: status %d", r1.StatusCode)
	}
	if hits, misses := s.Cache().Stats(); hits != 0 || misses != 1 {
		t.Fatalf("after seed: hits %d misses %d, want 0/1", hits, misses)
	}

	// Resume: the full sweep. fig2 must replay from cache, fig1 must be
	// the only recomputation.
	r2 := postJSON(t, srv.URL+"/v1/sweep", full)
	body := readAll(t, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("resumed sweep: status %d: %s", r2.StatusCode, body)
	}

	var job Job
	decodeJob(t, srv.URL, r2.Header.Get("X-Mct-Job"), &job)
	if job.CacheHits != 1 || job.CacheMisses != 1 {
		t.Fatalf("resumed sweep recomputed the wrong cells: hits %d misses %d, want 1 hit (fig2) / 1 miss (fig1)",
			job.CacheHits, job.CacheMisses)
	}
	m := scrapeMetrics(t, srv.URL)
	if m["cache_hits"] != 1 || m["cache_misses"] != 2 {
		t.Errorf("metrics: cache_hits %v cache_misses %v, want 1/2 (fig2 seed, fig1 resume, fig2 replay)",
			m["cache_hits"], m["cache_misses"])
	}

	// Both cells streamed results.
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("resumed sweep streamed %d lines, want fig1 + fig2 + summary", len(lines))
	}
	for i, slug := range []string{"fig1", "fig2"} {
		var ln sweepLine
		if err := json.Unmarshal(lines[i], &ln); err != nil || ln.Experiment != slug || ln.Error != "" || len(ln.Result) == 0 {
			t.Errorf("line %d: want a %s result, got %s", i, slug, lines[i])
		}
	}

	// A third, fully-warm submission computes nothing at all.
	r3 := postJSON(t, srv.URL+"/v1/sweep", full)
	r3.Body.Close()
	var j3 Job
	decodeJob(t, srv.URL, r3.Header.Get("X-Mct-Job"), &j3)
	if j3.CacheHits != 2 || j3.CacheMisses != 0 {
		t.Errorf("warm sweep: hits %d misses %d, want 2/0", j3.CacheHits, j3.CacheMisses)
	}
}
