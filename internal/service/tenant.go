package service

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// TenantHeader names the validated tenant identity header MRC quota
// accounting keys on. Unlike X-Mct-Client (fairness only, accepts any
// value), a tenant name is charset- and length-checked so quota state
// can't be poisoned with unbounded junk keys or split across spoofed
// aliases of unlimited shape.
const TenantHeader = "X-Mct-Tenant"

// ErrQuota marks a request rejected because its tenant exhausted an MRC
// quota dimension. statusFor maps it to 429 alongside the admission
// errors — quota exhaustion is backpressure, not a client bug.
var ErrQuota = errors.New("service: tenant quota exceeded")

// TenantQuota bounds what one tenant may consume per accounting window.
// The zero value means unlimited samples and bytes with the default
// sampled-set cap — accounting still runs, nothing rejects.
type TenantQuota struct {
	// MaxSamples caps SHARDS-sampled references processed per window
	// (0 = unlimited).
	MaxSamples uint64
	// MaxBytes caps uploaded trace bytes ingested per window
	// (0 = unlimited).
	MaxBytes uint64
	// MaxSampledSet caps the per-request max_sampled a tenant may ask
	// for — the profiler's resident-memory knob (0 = the profiler
	// default; requests above the cap are rejected with 429).
	MaxSampledSet int
	// MaxTenants bounds the ledger itself (0 = 4096; the stalest
	// tenant's window is evicted at the cap, so ledger memory stays
	// proportional to configuration, never to offered identities).
	MaxTenants int
	// Window is the accounting period (0 = 1h). Usage resets when a
	// tenant's window expires.
	Window time.Duration
}

func (q TenantQuota) withDefaults() TenantQuota {
	if q.MaxTenants == 0 {
		q.MaxTenants = 4096
	}
	if q.Window == 0 {
		q.Window = time.Hour
	}
	return q
}

// tenantUsage is one tenant's consumption in its current window.
type tenantUsage struct {
	winStart time.Time
	samples  uint64
	bytes    uint64
}

// tenantLedger is the windowed per-tenant accounting behind /v1/mrc:
// record-then-compare, so a tenant's first over-budget request still
// completes (the work was already admitted) and every request after it
// rejects at the precheck until the window rolls.
type tenantLedger struct {
	mu  sync.Mutex
	q   TenantQuota
	m   map[string]*tenantUsage
	now func() time.Time // test seam
}

func newTenantLedger(q TenantQuota) *tenantLedger {
	return &tenantLedger{q: q.withDefaults(), m: map[string]*tenantUsage{}, now: time.Now}
}

// charge records samples and bytes against tenant and reports whether
// the tenant is now over quota. Charging zero is a pure precheck.
func (l *tenantLedger) charge(tenant string, samples, bytes uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	u, ok := l.m[tenant]
	if !ok {
		if len(l.m) >= l.q.MaxTenants {
			l.evictStalest()
		}
		u = &tenantUsage{winStart: now}
		l.m[tenant] = u
	}
	if now.Sub(u.winStart) > l.q.Window {
		*u = tenantUsage{winStart: now}
	}
	u.samples += samples
	u.bytes += bytes
	if l.q.MaxSamples > 0 && u.samples > l.q.MaxSamples {
		return fmt.Errorf("%w: tenant %q used %d sampled refs of %d this window",
			ErrQuota, tenant, u.samples, l.q.MaxSamples)
	}
	if l.q.MaxBytes > 0 && u.bytes > l.q.MaxBytes {
		return fmt.Errorf("%w: tenant %q ingested %d bytes of %d this window",
			ErrQuota, tenant, u.bytes, l.q.MaxBytes)
	}
	return nil
}

// precheck rejects a tenant already over budget without charging
// anything — the gate in front of admission.
func (l *tenantLedger) precheck(tenant string) error { return l.charge(tenant, 0, 0) }

// evictStalest drops the tenant whose window started earliest. Called
// with mu held.
func (l *tenantLedger) evictStalest() {
	var victim string
	var oldest time.Time
	for name, u := range l.m {
		if victim == "" || u.winStart.Before(oldest) {
			victim, oldest = name, u.winStart
		}
	}
	delete(l.m, victim)
}

// validTenantName enforces the tenant charset: 1–64 characters of
// [A-Za-z0-9._-]. Tight enough that a tenant name is always safe as a
// log field, a metric label, or a map key of bounded size.
func validTenantName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantID resolves the quota identity of a request. An explicit
// X-Mct-Tenant must validate — a malformed value is a 400, never
// silently remapped (silent remapping would let a client split its
// usage across garbage aliases). Absent the header, the fallback chain
// is documented and deliberately coarse: the X-Mct-Client fairness ID
// if it happens to be a valid tenant name, else the peer host, else
// one shared "default" bucket. Spoofing X-Mct-Client therefore buys an
// attacker nothing stricter than what the validated header offers, and
// clients that identify properly are never lumped into the shared
// bucket.
func tenantID(r *http.Request) (string, error) {
	if t := r.Header.Get(TenantHeader); t != "" {
		if !validTenantName(t) {
			return "", fmt.Errorf("%w: %s must be 1-64 chars of [A-Za-z0-9._-]", ErrBadRequest, TenantHeader)
		}
		return t, nil
	}
	if c := r.Header.Get("X-Mct-Client"); c != "" && validTenantName(c) {
		return c, nil
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && validTenantName(host) {
		return host, nil
	}
	return "default", nil
}
