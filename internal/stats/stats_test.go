package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRatioAndPct(t *testing.T) {
	if Ratio(1, 0) != 0 || Pct(1, 0) != 0 {
		t.Error("division by zero should yield 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("Ratio(3,4) != 0.75")
	}
	if Pct(3, 4) != 75 {
		t.Error("Pct(3,4) != 75")
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty slices should yield 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %g, want 2", got)
	}
	// GeoMean of identical values is that value.
	if got := GeoMean([]float64{1.05, 1.05, 1.05}); math.Abs(got-1.05) > 1e-12 {
		t.Errorf("GeoMean of constants = %g", got)
	}
	// Non-positive entries must not produce NaN.
	if got := GeoMean([]float64{0, 2}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("GeoMean with zero produced %g", got)
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	// AM-GM inequality as a property test over positive inputs.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4, 10)
	for _, v := range []uint64{0, 5, 9, 10, 25, 39, 40, 1000} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bucket(0) != 3 || h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(3) != 1 {
		t.Errorf("buckets = %d %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3))
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d", h.Overflow())
	}
	if p := h.Percentile(0.5); p != 20 {
		t.Errorf("P50 = %d, want 20", p)
	}
	if p := h.Percentile(1.0); p != 40 {
		t.Errorf("P100 = %d, want 40 (overflow boundary)", p)
	}
	if NewHistogram(1, 1).Percentile(0.5) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0, 10) did not panic")
		}
	}()
	NewHistogram(0, 10)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "v1", "v2")
	tb.AddRowF("alpha", 1.5, 2.25)
	tb.AddRow("b", "x") // short row padded
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.50") || !strings.Contains(out, "2.25") {
		t.Errorf("missing formatted cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "benchmark", "speedup")
	tb.AddRow("tomcatv", "1.325")
	tb.AddRow("go", "1.001")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// All rows should have equal rendered width.
	w := len(lines[0])
	for _, l := range lines {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", tb.String())
			break
		}
	}
}

func TestSortRowsByLabel(t *testing.T) {
	tb := NewTable("", "name", "v")
	tb.AddRow("zeta", "1")
	tb.AddRow("MEAN", "2")
	tb.AddRow("alpha", "3")
	tb.SortRowsByLabel("MEAN")
	out := tb.String()
	ia, iz, im := strings.Index(out, "alpha"), strings.Index(out, "zeta"), strings.Index(out, "MEAN")
	if !(ia < iz && iz < im) {
		t.Errorf("sort order wrong:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "name", "v")
	tb.AddRow("plain", "1.5")
	tb.AddRow("with,comma", `quote"inside`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "name,v" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"with,comma","quote""inside"` {
		t.Errorf("quoting wrong: %q", lines[2])
	}
	if tb.Title() != "T" {
		t.Error("Title accessor wrong")
	}
}
