package stats

import (
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	c := NewBarChart("Demo", 20).SetBaseline(1.0)
	c.Add("alpha", 2.0).Add("beta", 1.0).Add("gamma", 0.5)
	out := c.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// alpha's bar (the max) should be the longest.
	countHash := func(s string) int { return strings.Count(s, "#") }
	if !(countHash(lines[1]) > countHash(lines[2]) && countHash(lines[2]) > countHash(lines[3])) {
		t.Errorf("bar lengths not ordered:\n%s", out)
	}
	// The baseline marker appears in the short bar.
	if !strings.ContainsAny(lines[3], "|+") {
		t.Errorf("baseline marker missing from gamma:\n%s", out)
	}
	// Values printed.
	if !strings.Contains(out, "2.000") || !strings.Contains(out, "0.500") {
		t.Errorf("values missing:\n%s", out)
	}
}

func TestBarChartEmpty(t *testing.T) {
	if NewBarChart("x", 10).String() != "" {
		t.Error("empty chart should render empty")
	}
}

func TestBarChartDefaults(t *testing.T) {
	c := NewBarChart("", 0).SetFormat("%.1f")
	c.Add("a", 3.0)
	out := c.String()
	if !strings.Contains(out, "3.0") {
		t.Errorf("custom format ignored:\n%s", out)
	}
	if strings.Count(out, "#") != 50 {
		t.Errorf("default width not 50:\n%q", out)
	}
}
