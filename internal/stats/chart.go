package stats

import (
	"fmt"
	"strings"
)

// BarChart renders labeled horizontal bars as text — the closest a
// terminal gets to the paper's figures. Bars scale to a shared maximum so
// relative magnitudes read directly; a baseline value (e.g. speedup 1.0)
// can be marked so bars visibly cross it.
type BarChart struct {
	title    string
	labels   []string
	values   []float64
	baseline float64
	hasBase  bool
	width    int
	format   string
}

// NewBarChart creates a chart with the given title. Width is the maximum
// bar length in characters (default 50 if <= 0).
func NewBarChart(title string, width int) *BarChart {
	if width <= 0 {
		width = 50
	}
	return &BarChart{title: title, width: width, format: "%.3f"}
}

// SetBaseline marks a reference value (drawn as '|' within each bar).
func (c *BarChart) SetBaseline(v float64) *BarChart {
	c.baseline = v
	c.hasBase = true
	return c
}

// SetFormat overrides the value format (default %.3f).
func (c *BarChart) SetFormat(f string) *BarChart {
	c.format = f
	return c
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) *BarChart {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
	return c
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.values) == 0 {
		return ""
	}
	maxV := c.values[0]
	for _, v := range c.values {
		if v > maxV {
			maxV = v
		}
	}
	if c.hasBase && c.baseline > maxV {
		maxV = c.baseline
	}
	if maxV <= 0 {
		maxV = 1
	}
	labW := 0
	for _, l := range c.labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	basePos := -1
	if c.hasBase {
		basePos = int(c.baseline / maxV * float64(c.width))
	}
	for i, v := range c.values {
		n := int(v / maxV * float64(c.width))
		if n < 0 {
			n = 0
		}
		bar := []byte(strings.Repeat("#", n) + strings.Repeat(" ", c.width-n))
		if basePos >= 0 && basePos < len(bar) {
			if bar[basePos] == '#' {
				bar[basePos] = '+'
			} else {
				bar[basePos] = '|'
			}
		}
		fmt.Fprintf(&b, "  %-*s %s "+c.format+"\n", labW, c.labels[i], string(bar), v)
	}
	return b.String()
}
