// Package stats provides the counters, ratio helpers, summary statistics,
// and plain-text table formatting used by every experiment in the
// reproduction. Keeping formatting here means each figure/table prints
// through one code path and EXPERIMENTS.md rows are uniform.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ratio returns num/den as a float, and 0 when den is 0. All hit rates and
// accuracies in the simulator route through this so empty runs are safe.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct returns num/den as a percentage (0 when den is 0).
func Pct(num, den uint64) float64 { return 100 * Ratio(num, den) }

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny positive value so one degenerate benchmark cannot NaN a
// suite average; speedup aggregation in the paper's style uses this.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the smallest element of xs (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram is a fixed-bucket counter over a uint64 domain, used for
// per-set conflict heat maps and latency distributions.
type Histogram struct {
	buckets []uint64
	width   uint64
	over    uint64
	total   uint64
}

// NewHistogram creates a histogram with n buckets each covering width
// consecutive values; samples beyond n*width land in an overflow bucket.
func NewHistogram(n int, width uint64) *Histogram {
	if n <= 0 || width == 0 {
		panic("stats: NewHistogram requires n > 0 and width > 0")
	}
	return &Histogram{buckets: make([]uint64, n), width: width}
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.total++
	i := v / h.width
	if i >= uint64(len(h.buckets)) {
		h.over++
		return
	}
	h.buckets[i]++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Overflow returns the count of samples beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.over }

// Percentile returns the smallest value v such that at least p (0..1) of
// samples are <= v, in units of bucket upper bounds. Overflowed samples
// report the overflow boundary.
//
// The quantile follows perf.Percentile's nearest-rank rule — rank
// ceil(p·n), so the two packages agree on shared sample sets — and is
// validated the same way: NaN and p <= 0 clamp to the first sample's
// bucket, p >= 1 to the last. (Previously NaN and out-of-range p were
// accepted silently: p > 1 produced a target beyond the sample count and
// walked off the end to the overflow boundary even with no overflow.)
func (h *Histogram) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	var target uint64
	switch {
	case math.IsNaN(p) || p <= 0:
		target = 1
	case p >= 1:
		target = h.total
	default:
		target = uint64(math.Ceil(p * float64(h.total)))
		if target == 0 {
			target = 1
		}
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return uint64(i+1) * h.width
		}
	}
	return uint64(len(h.buckets)) * h.width
}

// Table accumulates rows of labeled values and renders an aligned
// plain-text table — the output format for every reproduced figure/table.
type Table struct {
	title   string
	columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{title: title, columns: columns}
}

// AddRow appends a row of pre-formatted cells. Short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowF appends a row with a label followed by %0.2f-formatted values.
func (t *Table) AddRowF(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.2f", v))
	}
	t.AddRow(cells...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with a title line, a header, and aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.columns))
	for i, c := range t.columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.columns)
	sep := make([]string, len(t.columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// SortRowsByLabel orders data rows alphabetically by their first cell,
// keeping any row whose label appears in keepLast (e.g. "mean") at the end
// in the order given.
func (t *Table) SortRowsByLabel(keepLast ...string) {
	lastRank := make(map[string]int, len(keepLast))
	for i, l := range keepLast {
		lastRank[l] = i
	}
	sort.SliceStable(t.rows, func(i, j int) bool {
		li, lj := t.rows[i][0], t.rows[j][0]
		ri, iLast := lastRank[li]
		rj, jLast := lastRank[lj]
		switch {
		case iLast && jLast:
			return ri < rj
		case iLast:
			return false
		case jLast:
			return true
		default:
			return li < lj
		}
	})
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// CSV renders the table as RFC-4180-ish CSV (header row then data rows;
// cells containing commas or quotes are quoted). Experiment tooling uses
// this for machine-readable exports of every figure.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
