package perf

import (
	"testing"
)

func TestMergeServerMetrics(t *testing.T) {
	a := &ServerMetrics{
		Counters: map[string]float64{"mct_jobs_accepted_total": 100, "mct_records_total": 5000},
		Histograms: []ServerHistogram{{
			Name: "mct_classify_duration_seconds", Count: 10, Sum: 1.5,
			Buckets: []ServerBucket{{LE: "0.005", Count: 4}, {LE: "0.05", Count: 9}, {LE: "+Inf", Count: 10}},
		}},
	}
	b := &ServerMetrics{
		Counters: map[string]float64{"mct_jobs_accepted_total": 50, "mct_slow_tasks_total": 2},
		Histograms: []ServerHistogram{
			{
				Name: "mct_classify_duration_seconds", Count: 20, Sum: 4.5,
				Buckets: []ServerBucket{{LE: "0.005", Count: 1}, {LE: "0.05", Count: 15}, {LE: "+Inf", Count: 20}},
			},
			{Name: "mct_sweep_duration_seconds", Count: 3, Sum: 0.9,
				Buckets: []ServerBucket{{LE: "+Inf", Count: 3}}},
		},
	}

	m := MergeServerMetrics(a, nil, b)
	if m == nil {
		t.Fatal("merge of non-nil inputs returned nil")
	}
	if got := m.Counters["mct_jobs_accepted_total"]; got != 150 {
		t.Errorf("accepted counter = %v, want 150 (sum of both instances)", got)
	}
	if got := m.Counters["mct_records_total"]; got != 5000 {
		t.Errorf("records counter = %v, want 5000", got)
	}
	if got := m.Counters["mct_slow_tasks_total"]; got != 2 {
		t.Errorf("slow counter = %v, want 2", got)
	}
	if len(m.Histograms) != 2 {
		t.Fatalf("merged %d histograms, want 2", len(m.Histograms))
	}
	h := m.Histograms[0]
	if h.Name != "mct_classify_duration_seconds" {
		t.Fatalf("first-seen order not preserved: %q first", h.Name)
	}
	if h.Count != 30 || h.Sum != 6.0 {
		t.Errorf("classify histogram count/sum = %d/%v, want 30/6", h.Count, h.Sum)
	}
	wantBuckets := []ServerBucket{{LE: "0.005", Count: 5}, {LE: "0.05", Count: 24}, {LE: "+Inf", Count: 30}}
	for i, wb := range wantBuckets {
		if h.Buckets[i] != wb {
			t.Errorf("bucket %d = %+v, want %+v", i, h.Buckets[i], wb)
		}
	}
	if m.Histograms[1].Name != "mct_sweep_duration_seconds" || m.Histograms[1].Count != 3 {
		t.Errorf("single-instance histogram mangled: %+v", m.Histograms[1])
	}

	// Inputs must not alias the output: mutating the merge can't reach
	// back into a per-instance scrape.
	m.Histograms[0].Buckets[0].Count = 999
	if a.Histograms[0].Buckets[0].Count != 4 {
		t.Error("merge aliases the first input's bucket slice")
	}

	if got := MergeServerMetrics(nil, nil); got != nil {
		t.Errorf("all-nil merge = %+v, want nil", got)
	}
	if got := MergeServerMetrics(); got != nil {
		t.Errorf("empty merge = %+v, want nil", got)
	}
}
