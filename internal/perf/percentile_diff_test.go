package perf

import (
	"math"
	"math/rand"
	"slices"
	"testing"
	"time"

	"repro/internal/stats"
)

// TestPercentileCrossPackageDifferential pins stats.Histogram.Percentile
// and perf.Percentile to the same nearest-rank rule over shared sample
// sets. With bucket width 1, a histogram's bucket for value v has upper
// bound v+1, so for every quantile — including the formerly-unvalidated
// NaN and out-of-range ones — the histogram answer must be exactly the
// sorted-samples answer plus one.
func TestPercentileCrossPackageDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sets := map[string][]uint64{
		"single":    {7},
		"two":       {3, 9},
		"four":      {1, 2, 3, 4},
		"dup-heavy": {5, 5, 5, 5, 5, 9, 9, 1},
	}
	uniform := make([]uint64, 997)
	for i := range uniform {
		uniform[i] = uint64(rng.Intn(200))
	}
	sets["uniform"] = uniform

	quantiles := []float64{-0.5, 0, 1e-9, 0.01, 0.25, 0.5, 0.6, 0.75, 0.9, 0.99, 0.999, 1, 1.5, math.NaN()}

	for name, vals := range sets {
		maxV := slices.Max(vals)
		h := stats.NewHistogram(int(maxV)+1, 1)
		sorted := make([]time.Duration, len(vals))
		for i, v := range vals {
			h.Add(v)
			sorted[i] = time.Duration(v)
		}
		slices.Sort(sorted)

		for _, q := range quantiles {
			want := uint64(Percentile(sorted, q)) + 1
			got := h.Percentile(q)
			if got != want {
				t.Errorf("%s q=%v: histogram %d, sorted-rank %d", name, q, got, want)
			}
		}
	}
}

// TestHistogramPercentileValidation pins the clamp semantics directly:
// NaN and p <= 0 answer like the minimum sample, p >= 1 like the
// maximum — never the overflow boundary unless samples overflowed.
func TestHistogramPercentileValidation(t *testing.T) {
	h := stats.NewHistogram(100, 1)
	for _, v := range []uint64{10, 20, 30} {
		h.Add(v)
	}
	if got := h.Percentile(math.NaN()); got != 11 {
		t.Errorf("NaN percentile = %d, want the min bucket bound 11", got)
	}
	if got := h.Percentile(-3); got != 11 {
		t.Errorf("p=-3 percentile = %d, want 11", got)
	}
	if got := h.Percentile(2); got != 31 {
		t.Errorf("p=2 percentile = %d, want the max bucket bound 31, not the overflow bound", got)
	}
	if got := h.Percentile(1); got != 31 {
		t.Errorf("p=1 percentile = %d, want 31", got)
	}
}
