package perf

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// naivePercentile is the reference nearest-rank definition, written the
// obvious way: the smallest sample with at least q·n samples at or below
// it. The production Percentile must agree with this everywhere.
func naivePercentile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	need := q * float64(n)
	for i := 0; i < n; i++ {
		if float64(i+1) >= need {
			return sorted[i]
		}
	}
	return sorted[n-1]
}

func TestPercentileTable(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty", nil, 0.5, 0},
		{"single q0", ms(7), 0, 7 * time.Millisecond},
		{"single q0.5", ms(7), 0.5, 7 * time.Millisecond},
		{"single q1", ms(7), 1, 7 * time.Millisecond},
		{"two q0", ms(1, 2), 0, 1 * time.Millisecond},
		{"two q0.5", ms(1, 2), 0.5, 1 * time.Millisecond},
		{"two q0.51", ms(1, 2), 0.51, 2 * time.Millisecond},
		{"two q1", ms(1, 2), 1, 2 * time.Millisecond},
		// The case the round-half-up bug got wrong: ceil(0.6*4)=3 → index
		// 2; the old code computed int(2.4+0.5)-1 = 1.
		{"p60 of 4", ms(1, 2, 3, 4), 0.6, 3 * time.Millisecond},
		{"p25 of 4", ms(1, 2, 3, 4), 0.25, 1 * time.Millisecond},
		{"p26 of 4", ms(1, 2, 3, 4), 0.26, 2 * time.Millisecond},
		{"p50 of 10", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.5, 5 * time.Millisecond},
		{"p90 of 10", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.9, 9 * time.Millisecond},
		{"p99 of 10", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 0.99, 10 * time.Millisecond},
		{"q below 0 clamps", ms(1, 2, 3), -0.5, 1 * time.Millisecond},
		{"q above 1 clamps", ms(1, 2, 3), 1.5, 3 * time.Millisecond},
	}
	for _, c := range cases {
		if got := Percentile(c.sorted, c.q); got != c.want {
			t.Errorf("%s: Percentile(%v, %g) = %v, want %v", c.name, c.sorted, c.q, got, c.want)
		}
	}
}

func TestPercentileMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.6, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for n := 1; n <= 40; n++ {
		sorted := make([]time.Duration, n)
		var acc time.Duration
		for i := range sorted {
			acc += time.Duration(1+rng.Intn(50)) * time.Millisecond
			sorted[i] = acc
		}
		for _, q := range qs {
			got := Percentile(sorted, q)
			want := naivePercentile(sorted, q)
			if got != want {
				t.Fatalf("n=%d q=%g: Percentile = %v, naive reference = %v", n, q, got, want)
			}
		}
	}
}

func TestPercentileMonotoneInQ(t *testing.T) {
	sorted := make([]time.Duration, 17)
	for i := range sorted {
		sorted[i] = time.Duration(i*i) * time.Microsecond
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0+1e-9; q += 0.001 {
		got := Percentile(sorted, q)
		if got < prev {
			t.Fatalf("Percentile not monotone: q=%g gave %v after %v", q, got, prev)
		}
		prev = got
	}
}

func TestSummarizeLatency(t *testing.T) {
	if got := SummarizeLatency(nil); got != (Latency{}) {
		t.Errorf("empty summary = %+v", got)
	}
	samples := []time.Duration{
		4 * time.Millisecond, 1 * time.Millisecond,
		3 * time.Millisecond, 2 * time.Millisecond,
	}
	got := SummarizeLatency(samples)
	if got.Count != 4 {
		t.Errorf("Count = %d", got.Count)
	}
	if math.Abs(got.MeanMs-2.5) > 1e-9 {
		t.Errorf("MeanMs = %g, want 2.5", got.MeanMs)
	}
	if got.P50Ms != 2 {
		t.Errorf("P50Ms = %g, want 2 (ceil(0.5*4)-1 = index 1)", got.P50Ms)
	}
	if got.P90Ms != 4 || got.P99Ms != 4 || got.MaxMs != 4 {
		t.Errorf("tail = %+v", got)
	}
}
