// Package perf is the repo's performance-trajectory harness: it measures
// the simulation core's hot paths (cache access/fill, oracle observe,
// fully-associative reference, workload generation, end-to-end simulation)
// with testing.Benchmark and renders the results as a machine-readable
// report (BENCH_*.json) so successive PRs have recorded numbers to beat.
//
// The components here deliberately mirror the allocation-regression tests:
// every steady-state hot path must report 0 allocs/op, and a regression
// shows up both as a failing test and as a nonzero column in the report.
package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/mem"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ReportSchema versions the BENCH_*.json format.
const ReportSchema = 1

// Result is one measured component.
type Result struct {
	// Name identifies the component (e.g. "cache.access").
	Name string `json:"name"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is the inverse throughput, for headline reading.
	OpsPerSec float64 `json:"ops_per_sec"`
	// AllocsPerOp and BytesPerOp are the heap cost per operation; hot
	// paths must hold these at zero.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// N is how many operations the benchmark ran.
	N int `json:"n"`
	// Metrics carries component-specific extras (e.g. ns_per_instr and
	// instrs_per_sec for the end-to-end simulation component).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full performance snapshot written to BENCH_*.json.
type Report struct {
	Schema      int      `json:"schema"`
	CodeVersion string   `json:"code_version"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Components  []Result `json:"components"`
}

// resultOf converts a testing.BenchmarkResult, scaling per-op numbers by
// opsPerIter when one benchmark iteration performs several hot-path
// operations.
func resultOf(name string, r testing.BenchmarkResult, opsPerIter int) Result {
	ops := int64(r.N) * int64(opsPerIter)
	if ops == 0 {
		ops = 1
	}
	ns := float64(r.T.Nanoseconds()) / float64(ops)
	out := Result{
		Name:        name,
		NsPerOp:     ns,
		AllocsPerOp: int64(r.MemAllocs) / ops,
		BytesPerOp:  int64(r.MemBytes) / ops,
		N:           int(ops),
	}
	if ns > 0 {
		out.OpsPerSec = 1e9 / ns
	}
	return out
}

// ResultOf converts a testing.BenchmarkResult into a Result, for
// env-gated bench tests in other packages that write their own
// BENCH_*.json via NewReport.
func ResultOf(name string, r testing.BenchmarkResult, opsPerIter int) Result {
	return resultOf(name, r, opsPerIter)
}

// benchAddrs builds a deterministic access mix: a hot line (hits), a
// conflict ping-pong, and a cold sweep over twice the 16KB cache.
func benchAddrs(n int) []mem.Addr {
	addrs := make([]mem.Addr, 0, n)
	var sweep uint64
	for len(addrs) < n {
		addrs = append(addrs, 0x1000, 0x20000, 0x24000,
			mem.Addr(0x100000+(sweep%512)*64))
		sweep++
	}
	return addrs[:n]
}

func l1Config() cache.Config {
	return cache.Config{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 1}
}

// traceImage renders n instructions of a stream as an in-memory
// fixed-stride v2 trace, the input both classification-ingest benchmarks
// replay.
func traceImage(s trace.Stream, n uint64) []byte {
	var buf bytes.Buffer
	w, err := trace.NewWriterV2(&buf, 0)
	if err != nil {
		panic(err)
	}
	sb := trace.NewStreamBatcher(trace.NewLimit(s, n))
	b := trace.NewBatch(trace.DefaultBatchSize)
	for sb.ReadBatch(b, trace.DefaultBatchSize) > 0 {
		if err := w.WriteBatch(b); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// Components runs every component benchmark and returns the results.
// Expect a few seconds of wall time (testing.Benchmark targets ~1s per
// component).
func Components() []Result {
	addrs := benchAddrs(4096)
	var out []Result

	// cache.access: the set-associative lookup, hit and miss mixed.
	c := cache.MustNew(l1Config())
	for _, a := range addrs {
		if !c.Access(a, mem.Load) {
			c.Fill(a, false, false)
		}
	}
	out = append(out, resultOf("cache.access", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Access(addrs[i%len(addrs)], mem.Load)
		}
	}), 1))

	// cache.fill: miss-path fill with eviction churn (two tags forced
	// into one set alternately, so every fill evicts).
	fc := cache.MustNew(l1Config())
	out = append(out, resultOf("cache.fill", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fc.Fill(mem.Addr(0x20000+uint64(i&1)<<14), false, false)
		}
	}), 1))

	// oracle.observe: first-touch bitmap + fully-associative reference.
	o := classify.MustNewOracle(l1Config())
	for _, a := range addrs {
		o.Observe(a, false)
	}
	out = append(out, resultOf("oracle.observe", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.Observe(addrs[i%len(addrs)], false)
		}
	}), 1))

	// fa.reference: the fully-associative LRU cache alone, with eviction
	// churn (working set of 512 lines over 256 capacity).
	fa := cache.NewFullyAssociative(256)
	out = append(out, resultOf("fa.reference", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fa.Reference(mem.LineAddr(i & 511))
		}
	}), 1))

	// workload.stream: synthetic instruction generation (the trace
	// producer every experiment consumes).
	gcc, _ := workload.ByName("gcc")
	out = append(out, resultOf("workload.stream", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		s := gcc.Stream(workload.DefaultSeed)
		var in trace.Instr
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Next(&in)
		}
	}), 1))

	// sim.endtoend: the full CPU + hierarchy + functional-cache stack, in
	// instructions per second. One benchmark iteration simulates
	// endToEndInstrs instructions.
	const endToEndInstrs = 200_000
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.Run(gcc, assist.MustNewBaseline(sim.L1Config(), 0),
				sim.Options{Instructions: endToEndInstrs})
		}
	})
	e2e := resultOf("sim.endtoend", r, endToEndInstrs)
	e2e.Metrics = map[string]float64{
		"ns_per_instr":   e2e.NsPerOp,
		"instrs_per_sec": e2e.OpsPerSec,
	}
	out = append(out, e2e)

	// sim.classify.scalar / sim.endtoend.batch: the trace-ingest path
	// (decode + cache + MCT + oracle + accuracy over a binary trace),
	// record-at-a-time reference vs the struct-of-arrays batch kernel.
	// Both replay the same in-memory fixed-stride v2 image of the same
	// endToEndInstrs-instruction stream, so ns_per_instr is directly
	// comparable and the ratio is the batch kernel's speedup.
	newRun := func() *classify.Run {
		run, err := classify.NewRun(l1Config(), 0)
		if err != nil {
			panic(err)
		}
		return run
	}
	img := traceImage(gcc.Stream(workload.DefaultSeed), endToEndInstrs)
	m, err := trace.OpenMapped(img, trace.Limits{})
	if err != nil {
		panic(err)
	}
	sc := resultOf("sim.classify.scalar", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Rewind()
			sim.ClassifyScalar(newRun(), m)
		}
	}), endToEndInstrs)
	sc.Metrics = map[string]float64{
		"ns_per_instr":   sc.NsPerOp,
		"instrs_per_sec": sc.OpsPerSec,
	}
	out = append(out, sc)

	bt := resultOf("sim.endtoend.batch", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Rewind()
			sim.ClassifyBatched(newRun(), m, 0)
		}
	}), endToEndInstrs)
	bt.Metrics = map[string]float64{
		"ns_per_instr":   bt.NsPerOp,
		"instrs_per_sec": bt.OpsPerSec,
	}
	out = append(out, bt)

	return out
}

// NewReport wraps component results with the environment stamp.
func NewReport(components []Result) Report {
	return Report{
		Schema:      ReportSchema,
		CodeVersion: runner.CodeVersion(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Components:  components,
	}
}

// WriteJSON writes the report to path, indented for diffability.
func (r Report) WriteJSON(path string) error {
	return writeJSONFile(path, r)
}

// writeJSONFile writes any report type to path, indented, newline-terminated.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encoding report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("perf: writing report: %w", err)
	}
	return nil
}

// Table renders the report as a plain-text table in the house style.
func (r Report) Table() *stats.Table {
	t := stats.NewTable(fmt.Sprintf("Hot-path benchmarks (%s, %s/%s)", r.GoVersion, r.GOOS, r.GOARCH),
		"component", "ns/op", "ops/sec", "allocs/op", "B/op")
	for _, c := range r.Components {
		t.AddRow(c.Name,
			fmt.Sprintf("%.1f", c.NsPerOp),
			fmt.Sprintf("%.0f", c.OpsPerSec),
			fmt.Sprint(c.AllocsPerOp),
			fmt.Sprint(c.BytesPerOp))
	}
	return t
}
