package perf

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/runner"
	"repro/internal/stats"
)

// LoadReportSchema versions the BENCH load-test JSON format (written by
// cmd/mctload as BENCH_pr8.json). Schema 2 added the Server section:
// server-side histograms and counters folded in from the service's
// Prometheus exposition, so one file carries both sides of the run.
// Schema 3 added the client-resilience fields to each LoadResult —
// retries, hedges, and the by_failure error taxonomy — so a chaos run
// records not just what failed but what the retry layer absorbed.
// Schema 4 added fleet support: Targets lists every instance a
// multi-target run spread over, Servers carries each one's scraped
// metrics, per-target rows join Results, and by_failure keys gain an
// @target suffix in multi-target runs.
const LoadReportSchema = 4

// Latency summarizes a latency sample set in milliseconds.
type Latency struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Percentile returns the q-quantile (0 <= q <= 1) of sorted (ascending)
// samples using the nearest-rank definition: the smallest sample such
// that at least q·n samples are <= it, i.e. index ceil(q·n)-1. Zero when
// empty; NaN and q below 0 clamp to the min sample, q above 1 to the max.
//
// The previous implementation rounded the rank half-up
// (int(q·n + 0.5) - 1), which understates percentiles whenever q·n has
// fractional part below one half — e.g. p60 of 4 samples picked index 1
// (the 50th percentile) instead of index 2.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// SummarizeLatency sorts samples in place and extracts the summary.
func SummarizeLatency(samples []time.Duration) Latency {
	if len(samples) == 0 {
		return Latency{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Latency{
		Count:  uint64(len(samples)),
		MeanMs: ms(sum) / float64(len(samples)),
		P50Ms:  ms(Percentile(samples, 0.50)),
		P90Ms:  ms(Percentile(samples, 0.90)),
		P99Ms:  ms(Percentile(samples, 0.99)),
		MaxMs:  ms(samples[len(samples)-1]),
	}
}

// LoadResult is one endpoint's (or the total's) load-test outcome.
type LoadResult struct {
	// Name identifies the traffic class ("classify", "sweep", "total").
	Name string `json:"name"`
	// Requests completed (any response); Errors are transport failures
	// plus 5xx responses. Rejections (429/503) are visible in ByStatus —
	// under overload they are the admission controller doing its job, not
	// errors.
	Requests uint64            `json:"requests"`
	Errors   uint64            `json:"errors"`
	ByStatus map[string]uint64 `json:"by_status,omitempty"`
	// ByFailure buckets terminal failures by the client taxonomy
	// (conn_reset, timeout, connect, http_429, http_503, http_5xx,
	// other). Unlike ByStatus — which records final responses — this
	// counts only requests that exhausted their retries.
	ByFailure map[string]uint64 `json:"by_failure,omitempty"`
	// Retries counts extra attempts beyond each request's first; Hedges
	// counts speculative second requests launched by the hedging timer.
	// Both measure work the resilience layer did that a plain client
	// would have surfaced as errors (or tail latency).
	Retries uint64 `json:"retries,omitempty"`
	Hedges  uint64 `json:"hedges,omitempty"`
	// Throughput is completed requests per second of test wall time.
	Throughput float64 `json:"throughput_rps"`
	Latency    Latency `json:"latency"`
}

// ServerBucket is one cumulative histogram bucket as scraped from the
// service: every observation <= LE (an upper bound like "0.005" or
// "+Inf") counts toward Count.
type ServerBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// ServerHistogram is one server-side histogram folded into the report
// from the Prometheus exposition. Sum's unit is the histogram's own
// (seconds for *_seconds, items for *_size).
type ServerHistogram struct {
	Name    string         `json:"name"`
	Count   uint64         `json:"count"`
	Sum     float64        `json:"sum"`
	Buckets []ServerBucket `json:"buckets,omitempty"`
}

// ServerMetrics is the service's own view of the load run, scraped from
// GET /metrics?format=prometheus after the fleet drains. Client-side
// latency (the Results) includes the network and the generator; the
// server-side histograms isolate what the service itself measured.
type ServerMetrics struct {
	Counters   map[string]float64 `json:"counters,omitempty"`
	Histograms []ServerHistogram  `json:"histograms,omitempty"`
}

// MergeServerMetrics folds per-instance scrapes into one fleet-wide
// view: counters sum by name, histograms merge by name (counts and sums
// add, cumulative buckets add per LE bound). Order is first-seen, so a
// fleet of identically-shaped instances merges in the first instance's
// order and the output stays diffable. Nil inputs are skipped; the
// result is nil only when every input is nil (matching the "could not
// scrape" convention of LoadReport.Server).
func MergeServerMetrics(ms ...*ServerMetrics) *ServerMetrics {
	var out *ServerMetrics
	histIdx := map[string]int{}
	for _, m := range ms {
		if m == nil {
			continue
		}
		if out == nil {
			out = &ServerMetrics{}
		}
		for name, v := range m.Counters {
			if out.Counters == nil {
				out.Counters = map[string]float64{}
			}
			out.Counters[name] += v
		}
		for _, h := range m.Histograms {
			i, ok := histIdx[h.Name]
			if !ok {
				histIdx[h.Name] = len(out.Histograms)
				merged := ServerHistogram{Name: h.Name, Count: h.Count, Sum: h.Sum,
					Buckets: append([]ServerBucket(nil), h.Buckets...)}
				out.Histograms = append(out.Histograms, merged)
				continue
			}
			dst := &out.Histograms[i]
			dst.Count += h.Count
			dst.Sum += h.Sum
			bIdx := map[string]int{}
			for j, b := range dst.Buckets {
				bIdx[b.LE] = j
			}
			for _, b := range h.Buckets {
				if j, ok := bIdx[b.LE]; ok {
					dst.Buckets[j].Count += b.Count
				} else {
					dst.Buckets = append(dst.Buckets, b)
				}
			}
		}
	}
	return out
}

// LoadReport is the full load-test snapshot written to BENCH_pr5.json.
type LoadReport struct {
	Schema      int     `json:"schema"`
	CodeVersion string  `json:"code_version"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Target      string  `json:"target"`
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	TargetQPS   float64 `json:"target_qps,omitempty"`

	// Targets lists every instance of a multi-target (fleet) run; empty
	// for the single-target case, where Target alone names it.
	Targets []string `json:"targets,omitempty"`

	Results []LoadResult `json:"results"`
	// Server holds the scraped server-side metrics; nil when the target
	// could not be scraped (the client-side results still stand alone).
	Server *ServerMetrics `json:"server,omitempty"`
	// Servers holds per-instance scrapes for multi-target runs, keyed by
	// target URL (absent entries failed to scrape).
	Servers map[string]*ServerMetrics `json:"servers,omitempty"`
}

// NewLoadReport stamps results with the environment, mirroring NewReport.
func NewLoadReport(target string, duration time.Duration, concurrency int, qps float64, results []LoadResult) LoadReport {
	return LoadReport{
		Schema:      LoadReportSchema,
		CodeVersion: runner.CodeVersion(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Target:      target,
		DurationSec: duration.Seconds(),
		Concurrency: concurrency,
		TargetQPS:   qps,
		Results:     results,
	}
}

// WriteJSON writes the report to path, indented for diffability.
func (r LoadReport) WriteJSON(path string) error {
	return writeJSONFile(path, r)
}

// Table renders the load report in the house table style.
func (r LoadReport) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Load test: %s (%.1fs, %d workers)", r.Target, r.DurationSec, r.Concurrency),
		"traffic", "reqs", "rps", "errs", "retries", "p50 ms", "p90 ms", "p99 ms", "max ms")
	for _, res := range r.Results {
		t.AddRow(res.Name,
			fmt.Sprint(res.Requests),
			fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprint(res.Errors),
			fmt.Sprint(res.Retries),
			fmt.Sprintf("%.2f", res.Latency.P50Ms),
			fmt.Sprintf("%.2f", res.Latency.P90Ms),
			fmt.Sprintf("%.2f", res.Latency.P99Ms),
			fmt.Sprintf("%.2f", res.Latency.MaxMs))
	}
	return t
}
