package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestResultOfScaling: per-op numbers must divide by opsPerIter when one
// benchmark iteration performs many hot-path operations (the end-to-end
// component simulates 200k instructions per iteration).
func TestResultOfScaling(t *testing.T) {
	r := testing.BenchmarkResult{N: 10, T: 10_000 * time.Nanosecond, MemAllocs: 20, MemBytes: 40}
	got := resultOf("x", r, 100)
	if got.N != 1000 {
		t.Errorf("N = %d, want 1000", got.N)
	}
	if got.NsPerOp != 10 {
		t.Errorf("NsPerOp = %v, want 10", got.NsPerOp)
	}
	if got.OpsPerSec != 1e8 {
		t.Errorf("OpsPerSec = %v, want 1e8", got.OpsPerSec)
	}
	if got.AllocsPerOp != 0 || got.BytesPerOp != 0 {
		t.Errorf("allocs/bytes per op = %d/%d, want 0/0 (20 allocs over 1000 ops)", got.AllocsPerOp, got.BytesPerOp)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := NewReport([]Result{{
		Name: "fake", NsPerOp: 1.5, OpsPerSec: 6.6e8, N: 3,
		Metrics: map[string]float64{"ns_per_instr": 1.5},
	}})
	if rep.Schema != ReportSchema || rep.CodeVersion == "" || rep.GoVersion == "" {
		t.Fatalf("environment stamp incomplete: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Error("report file must end in a newline")
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || len(back.Components) != 1 ||
		back.Components[0].Name != "fake" ||
		back.Components[0].Metrics["ns_per_instr"] != 1.5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// The table renderer must not panic and must mention the component.
	if s := rep.Table().String(); s == "" {
		t.Error("empty table")
	}
}
