package core

import "testing"

// TestFilterTruthTable pins the paper's four filter definitions exactly
// (DESIGN.md decision 3).
func TestFilterTruthTable(t *testing.T) {
	cases := []struct {
		f              Filter
		ff, ft, tf, tt bool // Eval(incoming, evicted) for FF, FT, TF, TT
	}{
		{NoFilter, true, true, true, true},
		{InConflict, false, true, false, true},
		{OutConflict, false, false, true, true},
		{AndConflict, false, false, false, true},
		{OrConflict, false, true, true, true},
	}
	for _, c := range cases {
		got := [4]bool{
			c.f.Eval(false, false), c.f.Eval(false, true),
			c.f.Eval(true, false), c.f.Eval(true, true),
		}
		want := [4]bool{c.ff, c.ft, c.tf, c.tt}
		if got != want {
			t.Errorf("%s truth table = %v, want %v", c.f, got, want)
		}
	}
}

func TestFilterNames(t *testing.T) {
	want := map[Filter]string{
		NoFilter:    "none",
		InConflict:  "in-conflict",
		OutConflict: "out-conflict",
		AndConflict: "and-conflict",
		OrConflict:  "or-conflict",
	}
	for f, name := range want {
		if f.String() != name {
			t.Errorf("%d.String() = %q, want %q", f, f.String(), name)
		}
	}
	if Filter(42).String() == "" {
		t.Error("unknown filter should still render")
	}
}

func TestNeedsConflictBits(t *testing.T) {
	// The paper presents out-conflict as the default because it does not
	// require the per-line bit.
	if NoFilter.NeedsConflictBits() || OutConflict.NeedsConflictBits() {
		t.Error("none/out-conflict must not need conflict bits")
	}
	for _, f := range []Filter{InConflict, AndConflict, OrConflict} {
		if !f.NeedsConflictBits() {
			t.Errorf("%s needs conflict bits", f)
		}
	}
}

func TestParseFilterRoundTrip(t *testing.T) {
	for _, f := range append([]Filter{NoFilter}, Filters...) {
		got, err := ParseFilter(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFilter(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFilter("bogus"); err == nil {
		t.Error("bogus filter should not parse")
	}
}

func TestFiltersOrder(t *testing.T) {
	// The paper presents in, out, and, or — Figure 4's bar order depends
	// on this.
	want := []Filter{InConflict, OutConflict, AndConflict, OrConflict}
	if len(Filters) != len(want) {
		t.Fatalf("Filters has %d entries", len(Filters))
	}
	for i := range want {
		if Filters[i] != want[i] {
			t.Errorf("Filters[%d] = %s", i, Filters[i])
		}
	}
}

// TestFilterBiasOrdering checks the paper's bias claim: or-conflict is the
// most liberal (matches whenever any other filter matches) and and-conflict
// the strictest.
func TestFilterBiasOrdering(t *testing.T) {
	for _, in := range []bool{false, true} {
		for _, ev := range []bool{false, true} {
			and := AndConflict.Eval(in, ev)
			or := OrConflict.Eval(in, ev)
			inF := InConflict.Eval(in, ev)
			outF := OutConflict.Eval(in, ev)
			if and && (!inF || !outF) {
				t.Errorf("and-conflict true must imply in and out (in=%v ev=%v)", in, ev)
			}
			if (inF || outF) && !or {
				t.Errorf("in/out true must imply or-conflict (in=%v ev=%v)", in, ev)
			}
		}
	}
}
