// Package core implements the paper's primary contribution: the Miss
// Classification Table (MCT), a small hardware structure that labels each
// cache miss on the fly as a conflict miss or a capacity (non-conflict)
// miss.
//
// The MCT holds one entry per cache set, containing (part of) the tag of
// the line most recently evicted from that set. When the next miss arrives
// at the set, a matching tag means the missing line was the one just thrown
// out — a conflict near-miss that slightly more associativity would have
// caught. A mismatch means the set's contents turned over for capacity
// reasons. The structure is only consulted on cache misses, so it sits off
// the critical path.
//
// The package also provides the per-line conflict bit bookkeeping and the
// four eviction-time filters (in-, out-, and-, or-conflict) that the
// paper's cache-assist policies are built from.
package core

import "fmt"

// Class is the MCT's verdict on a miss.
type Class uint8

const (
	// Capacity groups capacity and compulsory misses, following the paper.
	Capacity Class = iota
	// Conflict marks a miss whose tag matched the set's most recently
	// evicted tag — it would have hit with one more way of associativity.
	Conflict
)

// String returns "capacity" or "conflict".
func (c Class) String() string {
	if c == Conflict {
		return "conflict"
	}
	return "capacity"
}

// Config sizes the Miss Classification Table.
type Config struct {
	// Sets is the number of cache sets covered; the MCT is direct-mapped
	// with exactly one entry per set regardless of cache associativity.
	Sets int
	// TagBits is how many low-order bits of each evicted tag are stored.
	// 0 means the full tag. The paper's Figure 2 shows 8–12 bits retain
	// nearly full-tag accuracy at a fraction of the storage.
	TagBits int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sets <= 0 {
		return fmt.Errorf("core: MCT needs a positive set count, got %d", c.Sets)
	}
	if c.TagBits < 0 || c.TagBits > 64 {
		return fmt.Errorf("core: MCT tag bits must be in [0,64], got %d", c.TagBits)
	}
	return nil
}

// StorageBits returns the MCT's total storage cost in bits, the figure of
// merit the paper reports (1.25KB for a 64KB direct-mapped cache at 10
// bits/entry). Full-tag configurations report with an assumed tag width.
func (c Config) StorageBits(fullTagWidth int) int {
	bits := c.TagBits
	if bits == 0 {
		bits = fullTagWidth
	}
	return c.Sets * (bits + 1) // +1 valid bit per entry
}

// Stats counts the MCT's classification decisions.
type Stats struct {
	// ConflictMisses and CapacityMisses count ClassifyMiss verdicts.
	ConflictMisses uint64
	CapacityMisses uint64
	// Evictions counts RecordEviction calls; Seeds counts Seed calls (the
	// Sec 5.3 bypass-buffer seeding path).
	Evictions uint64
	Seeds     uint64
}

// Misses returns the total number of classified misses.
func (s Stats) Misses() uint64 { return s.ConflictMisses + s.CapacityMisses }

// ConflictFraction returns the fraction of classified misses labeled
// conflict.
func (s Stats) ConflictFraction() float64 {
	if s.Misses() == 0 {
		return 0
	}
	return float64(s.ConflictMisses) / float64(s.Misses())
}

// MCT is the Miss Classification Table.
type MCT struct {
	cfg     Config
	tagMask uint64 // all-ones when storing the full tag
	tags    []uint64
	valid   []bool
	stats   Stats
}

// New constructs an MCT from a validated configuration.
func New(cfg Config) (*MCT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mask := ^uint64(0)
	if cfg.TagBits > 0 && cfg.TagBits < 64 {
		mask = (uint64(1) << uint(cfg.TagBits)) - 1
	}
	return &MCT{
		cfg:     cfg,
		tagMask: mask,
		tags:    make([]uint64, cfg.Sets),
		valid:   make([]bool, cfg.Sets),
	}, nil
}

// MustNew is New that panics on error, for fixed shapes in tests/examples.
func MustNew(cfg Config) *MCT {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the table's configuration.
func (m *MCT) Config() Config { return m.cfg }

// Stats returns a snapshot of the classification counters.
func (m *MCT) Stats() Stats { return m.stats }

// ResetStats clears the counters without touching table contents.
func (m *MCT) ResetStats() { m.stats = Stats{} }

// Classify returns the verdict for a miss with the given set index and full
// tag without updating any statistics. Policies that need to peek (e.g.
// pseudo-associative probing) use this; the hierarchy's per-miss
// classification goes through ClassifyMiss.
func (m *MCT) Classify(set, tag uint64) Class {
	if m.valid[set] && m.tags[set] == tag&m.tagMask {
		return Conflict
	}
	return Capacity
}

// ClassifyMiss classifies a miss and counts it.
func (m *MCT) ClassifyMiss(set, tag uint64) Class {
	c := m.Classify(set, tag)
	if c == Conflict {
		m.stats.ConflictMisses++
	} else {
		m.stats.CapacityMisses++
	}
	return c
}

// RecordEviction stores the (masked) tag of the line just evicted from set,
// replacing whatever the entry held.
func (m *MCT) RecordEviction(set, tag uint64) {
	m.stats.Evictions++
	m.tags[set] = tag & m.tagMask
	m.valid[set] = true
}

// Seed writes a tag into the entry for set exactly as RecordEviction does,
// but is counted separately. Sec 5.3 of the paper requires this: when a
// miss is diverted to the bypass buffer instead of the cache, its tag is
// seeded into the MCT entry of the set it would have occupied, so that a
// later miss on the same line can still be recognized as a conflict.
func (m *MCT) Seed(set, tag uint64) {
	m.stats.Seeds++
	m.tags[set] = tag & m.tagMask
	m.valid[set] = true
}

// Invalidate clears the entry for set. Exposed for tests and for cache
// flush handling.
func (m *MCT) Invalidate(set uint64) { m.valid[set] = false }

// EntryValid reports whether the entry for set holds an evicted tag.
func (m *MCT) EntryValid(set uint64) bool { return m.valid[set] }

// StoredTag returns the masked tag held for set (meaningful only when
// EntryValid reports true).
func (m *MCT) StoredTag(set uint64) uint64 { return m.tags[set] }
