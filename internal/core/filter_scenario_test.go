package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
)

// TestFilterScenarioEndToEnd drives the paper's four eviction filters
// through a real cache+MCT composition on a hand-computed access pattern,
// pinning Section 3's semantics at the MissEvent level rather than just
// Filter.Eval: the incoming-miss classification comes from the MCT, the
// evicted bit from the displaced line's fill-time classification.
//
// The cache is 256B direct-mapped with 64B lines (4 sets); A=0x000,
// B=0x100, C=0x200 all map to set 0 with distinct tags. Hand-derived
// trace (depth-1 MCT, initially empty):
//
//	#  addr  outcome                         incoming  evicted-bit
//	1  A     cold miss, capacity, no evict      cap       —
//	2  B     miss, capacity, evicts A(bit=0)    cap       0
//	3  A     miss, CONFLICT (A just evicted),   conf      0
//	          evicts B(bit=0), fills A bit=1
//	4  B     miss, CONFLICT, evicts A(bit=1)    conf      1
//	5  C     miss, capacity (last evict was A,  cap       1
//	          tag differs), evicts B(bit=1)
//	6  C     hit — no event
func TestFilterScenarioEndToEnd(t *testing.T) {
	const A, B, C = mem.Addr(0x000), mem.Addr(0x100), mem.Addr(0x200)
	cc := MustAttach(cache.MustNew(cache.Config{Name: "T", Size: 256, LineSize: 64, Assoc: 1}), 0)

	steps := []struct {
		addr      mem.Addr
		wantHit   bool
		wantClass Class
		wantEvict bool
		wantBit   bool
		// want[InConflict], [OutConflict], [AndConflict], [OrConflict]
		want [4]bool
	}{
		{A, false, Capacity, false, false, [4]bool{false, false, false, false}},
		{B, false, Capacity, true, false, [4]bool{false, false, false, false}},
		{A, false, Conflict, true, false, [4]bool{false, true, false, true}},
		{B, false, Conflict, true, true, [4]bool{true, true, true, true}},
		{C, false, Capacity, true, true, [4]bool{true, false, false, true}},
		{C, true, Capacity, false, false, [4]bool{false, false, false, false}},
	}
	for i, s := range steps {
		hit, ev := cc.Access(s.addr, false)
		if hit != s.wantHit {
			t.Fatalf("step %d (addr %#x): hit = %v, want %v", i+1, s.addr, hit, s.wantHit)
		}
		if hit {
			continue
		}
		if ev.Class != s.wantClass {
			t.Errorf("step %d: class = %v, want %v", i+1, ev.Class, s.wantClass)
		}
		if ev.Eviction.Occurred != s.wantEvict {
			t.Errorf("step %d: eviction occurred = %v, want %v", i+1, ev.Eviction.Occurred, s.wantEvict)
		}
		if ev.Eviction.Occurred && ev.Eviction.Conflict != s.wantBit {
			t.Errorf("step %d: evicted bit = %v, want %v", i+1, ev.Eviction.Conflict, s.wantBit)
		}
		for fi, f := range Filters {
			if got := ev.Filter(f); got != s.want[fi] {
				t.Errorf("step %d: %s = %v, want %v", i+1, f, got, s.want[fi])
			}
		}
		// NoFilter matches every miss event by definition.
		if !ev.Filter(NoFilter) {
			t.Errorf("step %d: NoFilter must match every eviction event", i+1)
		}
	}
}
