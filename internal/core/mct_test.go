package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mem"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Sets: 0}).Validate(); err == nil {
		t.Error("zero sets should be invalid")
	}
	if err := (Config{Sets: 256, TagBits: -1}).Validate(); err == nil {
		t.Error("negative tag bits should be invalid")
	}
	if err := (Config{Sets: 256, TagBits: 65}).Validate(); err == nil {
		t.Error("65 tag bits should be invalid")
	}
	if err := (Config{Sets: 256, TagBits: 0}).Validate(); err != nil {
		t.Errorf("full-tag config rejected: %v", err)
	}
}

func TestStorageBits(t *testing.T) {
	// The paper: 10 bits/entry for a 64KB DM cache with 64B lines (1024
	// sets) gives 1.25KB + valid bits; our accounting includes the valid
	// bit, so 1024*(10+1) bits.
	c := Config{Sets: 1024, TagBits: 10}
	if got := c.StorageBits(30); got != 1024*11 {
		t.Errorf("StorageBits = %d", got)
	}
	// Full tags use the supplied architectural tag width.
	c = Config{Sets: 256, TagBits: 0}
	if got := c.StorageBits(50); got != 256*51 {
		t.Errorf("full-tag StorageBits = %d", got)
	}
}

func TestClassifyConflictScenario(t *testing.T) {
	// The paper's defining scenario: B evicts A; the next miss to the set
	// is A again -> conflict.
	m := MustNew(Config{Sets: 256})
	const set, tagA, tagB = 5, 0x111, 0x222
	if m.Classify(set, tagA) != Capacity {
		t.Fatal("empty MCT entry must classify capacity")
	}
	m.RecordEviction(set, tagA) // A evicted (by B's fill)
	if m.ClassifyMiss(set, tagA) != Conflict {
		t.Error("re-miss on the just-evicted tag must be conflict")
	}
	if m.ClassifyMiss(set, tagB) != Capacity {
		t.Error("different tag must be capacity")
	}
	st := m.Stats()
	if st.ConflictMisses != 1 || st.CapacityMisses != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEntryOverwrite(t *testing.T) {
	m := MustNew(Config{Sets: 16})
	m.RecordEviction(3, 0xA)
	m.RecordEviction(3, 0xB) // most recent eviction wins
	if m.Classify(3, 0xA) != Capacity {
		t.Error("stale tag should no longer match")
	}
	if m.Classify(3, 0xB) != Conflict {
		t.Error("latest evicted tag should match")
	}
}

func TestPartialTagAliasing(t *testing.T) {
	// With 4 stored bits, tags equal mod 16 falsely match — the mechanism
	// behind Figure 2's conflict-heavy bias at small widths.
	m := MustNew(Config{Sets: 4, TagBits: 4})
	m.RecordEviction(0, 0x12)
	if m.Classify(0, 0x12) != Conflict {
		t.Error("exact tag must match")
	}
	if m.Classify(0, 0x22) != Conflict {
		t.Error("tag equal in low 4 bits must falsely match")
	}
	if m.Classify(0, 0x13) != Capacity {
		t.Error("tag differing in low bits must not match")
	}
}

func TestFullTagNoFalseMatches(t *testing.T) {
	m := MustNew(Config{Sets: 2, TagBits: 0})
	f := func(a, b uint64) bool {
		m.RecordEviction(0, a)
		got := m.Classify(0, b)
		want := Capacity
		if a == b {
			want = Conflict
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeedCountsSeparately(t *testing.T) {
	m := MustNew(Config{Sets: 8})
	m.Seed(1, 0x7)
	if m.Stats().Seeds != 1 || m.Stats().Evictions != 0 {
		t.Errorf("stats = %+v", m.Stats())
	}
	if m.Classify(1, 0x7) != Conflict {
		t.Error("seeded tag should classify conflict")
	}
}

func TestInvalidate(t *testing.T) {
	m := MustNew(Config{Sets: 8})
	m.RecordEviction(2, 0x5)
	if !m.EntryValid(2) {
		t.Fatal("entry should be valid")
	}
	m.Invalidate(2)
	if m.EntryValid(2) {
		t.Error("entry should be invalid")
	}
	if m.Classify(2, 0x5) != Capacity {
		t.Error("invalidated entry must not match")
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.ConflictFraction() != 0 {
		t.Error("empty stats fraction should be 0")
	}
	s = Stats{ConflictMisses: 3, CapacityMisses: 1}
	if s.Misses() != 4 || s.ConflictFraction() != 0.75 {
		t.Errorf("helpers: misses=%d frac=%g", s.Misses(), s.ConflictFraction())
	}
}

func TestResetStatsKeepsEntries(t *testing.T) {
	m := MustNew(Config{Sets: 8})
	m.RecordEviction(0, 0x9)
	m.ClassifyMiss(0, 0x9)
	m.ResetStats()
	if m.Stats().Misses() != 0 {
		t.Error("stats should clear")
	}
	if m.Classify(0, 0x9) != Conflict {
		t.Error("table contents should survive stats reset")
	}
}

func TestClassifyingCacheRoundTrip(t *testing.T) {
	cfg := cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
	cc := MustAttach(cache.MustNew(cfg), 0)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000) // aliasing pair

	hit, ev := cc.Access(a, false)
	if hit || ev.Class != Capacity {
		t.Fatalf("first touch: hit=%v class=%v", hit, ev.Class)
	}
	hit, ev = cc.Access(b, false) // evicts a, records a
	if hit || ev.Class != Capacity || !ev.Eviction.Occurred {
		t.Fatalf("aliasing miss: hit=%v class=%v ev=%+v", hit, ev.Class, ev.Eviction)
	}
	hit, ev = cc.Access(a, false) // the paper's conflict case
	if hit || ev.Class != Conflict {
		t.Fatalf("re-miss on evicted line: hit=%v class=%v", hit, ev.Class)
	}
	if !ev.IncomingConflict() {
		t.Error("IncomingConflict should be true")
	}
	// Eviction of b carries b's conflict bit (b entered as capacity).
	if ev.Eviction.Conflict {
		t.Error("b entered on a capacity miss; its bit should be clear")
	}
	// Conflict bit of the resident line a should now be set.
	if bit, present := cc.Cache().ConflictBit(a); !present || !bit {
		t.Errorf("conflict bit of a: bit=%v present=%v", bit, present)
	}
	hit, _ = cc.Access(a, false)
	if !hit {
		t.Error("a should now hit")
	}
}

func TestMissEventFilterHelper(t *testing.T) {
	ev := MissEvent{Class: Conflict, Eviction: cache.Eviction{Occurred: true, Conflict: false}}
	if !ev.Filter(OutConflict) || ev.Filter(InConflict) || ev.Filter(AndConflict) || !ev.Filter(OrConflict) {
		t.Error("filter evaluation over MissEvent wrong for conflict-in/clear-bit")
	}
	// No eviction: evicted bit reads false.
	ev = MissEvent{Class: Capacity}
	if ev.Filter(OrConflict) {
		t.Error("capacity miss with no eviction should not match or-conflict")
	}
}
