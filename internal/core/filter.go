package core

import "fmt"

// Filter selects which eviction events a policy acts on, as a predicate
// over the pair (incoming-miss classification, evicted line's conflict
// bit). The paper defines four filters for a direct-mapped cache:
//
//	in-conflict  — the evicted line originally entered on a conflict miss
//	out-conflict — the evicted line is being forced out by a conflict miss
//	and-conflict — both
//	or-conflict  — either
//
// Out-conflict is the paper's default when results are similar, because it
// does not require the per-line conflict bits.
type Filter uint8

const (
	// NoFilter matches every eviction (the unfiltered baseline policies).
	NoFilter Filter = iota
	// InConflict matches when the evicted line's conflict bit is set.
	InConflict
	// OutConflict matches when the incoming miss classified as conflict.
	OutConflict
	// AndConflict matches when both conditions hold — the strictest
	// identification, erring toward capacity.
	AndConflict
	// OrConflict matches when either condition holds — the most liberal
	// identification, erring toward conflict.
	OrConflict
)

// Filters lists the conflict filters in the order the paper presents them.
var Filters = []Filter{InConflict, OutConflict, AndConflict, OrConflict}

// String returns the paper's name for the filter.
func (f Filter) String() string {
	switch f {
	case NoFilter:
		return "none"
	case InConflict:
		return "in-conflict"
	case OutConflict:
		return "out-conflict"
	case AndConflict:
		return "and-conflict"
	case OrConflict:
		return "or-conflict"
	default:
		return fmt.Sprintf("Filter(%d)", uint8(f))
	}
}

// NeedsConflictBits reports whether evaluating the filter requires the
// per-line conflict bit (everything except out-conflict and no-filter).
// The paper notes out-conflict is attractive precisely because it does not
// need the extra bit per cache line.
func (f Filter) NeedsConflictBits() bool {
	switch f {
	case InConflict, AndConflict, OrConflict:
		return true
	default:
		return false
	}
}

// Eval evaluates the filter for an eviction where the incoming miss was
// classified incomingConflict and the displaced line's conflict bit was
// evictedBit. For fills into an empty way (no eviction), callers pass
// evictedBit = false.
func (f Filter) Eval(incomingConflict, evictedBit bool) bool {
	switch f {
	case NoFilter:
		return true
	case InConflict:
		return evictedBit
	case OutConflict:
		return incomingConflict
	case AndConflict:
		return incomingConflict && evictedBit
	case OrConflict:
		return incomingConflict || evictedBit
	default:
		return false
	}
}

// ParseFilter maps the paper's filter names (as printed by String) back to
// values; command-line tools use this.
func ParseFilter(s string) (Filter, error) {
	for _, f := range append([]Filter{NoFilter}, Filters...) {
		if f.String() == s {
			return f, nil
		}
	}
	return NoFilter, fmt.Errorf("core: unknown filter %q (want none, in-conflict, out-conflict, and-conflict, or or-conflict)", s)
}
