package core

import (
	"repro/internal/cache"
	"repro/internal/mem"
)

// MissEvent describes one classified cache miss, carrying everything a
// filter or policy needs: the MCT's verdict on the incoming miss and the
// eviction (if any) the fill caused, including the displaced line's
// conflict bit.
type MissEvent struct {
	// Addr is the missing byte address.
	Addr mem.Addr
	// Class is the MCT's verdict for the incoming miss.
	Class Class
	// Eviction is the line displaced by the fill (Occurred false when the
	// fill landed in an empty way or no fill was performed).
	Eviction cache.Eviction
}

// IncomingConflict reports whether the incoming miss classified as conflict.
func (e MissEvent) IncomingConflict() bool { return e.Class == Conflict }

// Filter evaluates f over this event's (incoming, evicted-bit) pair.
func (e MissEvent) Filter(f Filter) bool {
	return f.Eval(e.IncomingConflict(), e.Eviction.Occurred && e.Eviction.Conflict)
}

// ClassifyingCache couples a functional cache with an MCT so that every
// miss is classified, every fill records its conflict bit, and every
// eviction updates the table. It is the reference composition used by the
// accuracy experiments (Figures 1–2) and by examples; the timing hierarchy
// performs the same steps inline so assist buffers can interpose between
// classification and fill.
type ClassifyingCache struct {
	cache *cache.Cache
	mct   *MCT
}

// Attach builds a ClassifyingCache over c with an MCT storing tagBits bits
// per entry (0 = full tags).
func Attach(c *cache.Cache, tagBits int) (*ClassifyingCache, error) {
	m, err := New(Config{Sets: c.Config().Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	return &ClassifyingCache{cache: c, mct: m}, nil
}

// MustAttach is Attach that panics on error.
func MustAttach(c *cache.Cache, tagBits int) *ClassifyingCache {
	cc, err := Attach(c, tagBits)
	if err != nil {
		panic(err)
	}
	return cc
}

// Cache returns the underlying cache.
func (cc *ClassifyingCache) Cache() *cache.Cache { return cc.cache }

// Table returns the underlying MCT.
func (cc *ClassifyingCache) Table() *MCT { return cc.mct }

// Access runs one demand access through the cache: on a hit it returns
// (true, zero MissEvent); on a miss it classifies the miss, fills the line
// with the corresponding conflict bit, records the eviction in the MCT, and
// returns the full miss event.
func (cc *ClassifyingCache) Access(addr mem.Addr, isStore bool) (hit bool, ev MissEvent) {
	typ := mem.Load
	if isStore {
		typ = mem.Store
	}
	if cc.cache.Access(addr, typ) {
		return true, MissEvent{}
	}
	geom := cc.cache.Geometry()
	set := geom.Set(addr)
	tag := geom.Tag(addr)
	class := cc.mct.ClassifyMiss(set, tag)
	evict := cc.cache.Fill(addr, isStore, class == Conflict)
	if evict.Occurred {
		cc.mct.RecordEviction(geom.SetOfLine(evict.Line), geom.TagOfLine(evict.Line))
	}
	return false, MissEvent{Addr: addr, Class: class, Eviction: evict}
}

// AccessBatch runs a block of demand accesses through the cache+MCT
// pipeline, writing each access's hit flag to hits and, for misses, the
// MCT verdict to classes (classes[i] is meaningless when hits[i] is true).
// All four slices share addrs's length.
//
// Records are processed strictly in slice order: an access must observe
// the fills and evictions of every earlier access in the batch (two
// records can map to the same set), so the cache/MCT stage cannot be
// reordered or vectorized across records. What the batch shape buys is
// amortization: the geometry and table pointers are hoisted out of the
// loop, no MissEvent is materialized per record, and callers pay one call
// into this package per ~256 records instead of three per record.
func (cc *ClassifyingCache) AccessBatch(addrs []mem.Addr, stores, hits []bool, classes []Class) {
	if len(addrs) == 0 {
		return
	}
	stores = stores[:len(addrs)]
	hits = hits[:len(addrs)]
	classes = classes[:len(addrs)]
	c, m := cc.cache, cc.mct
	geom := c.Geometry()
	for i, addr := range addrs {
		typ := mem.Load
		if stores[i] {
			typ = mem.Store
		}
		if c.Access(addr, typ) {
			hits[i] = true
			continue
		}
		hits[i] = false
		set := geom.Set(addr)
		class := m.ClassifyMiss(set, geom.Tag(addr))
		classes[i] = class
		evict := c.Fill(addr, stores[i], class == Conflict)
		if evict.Occurred {
			m.RecordEviction(geom.SetOfLine(evict.Line), geom.TagOfLine(evict.Line))
		}
	}
}
