package core

import (
	"testing"
	"testing/quick"
)

func TestDeepValidation(t *testing.T) {
	if _, err := NewDeep(Config{Sets: 256}, 0); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := NewDeep(Config{Sets: 256}, 17); err == nil {
		t.Error("depth 17 accepted")
	}
	if _, err := NewDeep(Config{Sets: 0}, 2); err == nil {
		t.Error("bad config accepted")
	}
}

func TestDepth1MatchesClassicMCT(t *testing.T) {
	// The depth-1 DeepMCT must agree with the standard MCT on any
	// eviction/classification interleaving.
	f := func(ops []uint16) bool {
		classic := MustNew(Config{Sets: 16})
		deep := MustNewDeep(Config{Sets: 16}, 1)
		for _, op := range ops {
			set := uint64(op) & 15
			tag := uint64(op >> 4 & 0xff)
			if op>>15 == 0 {
				classic.RecordEviction(set, tag)
				deep.RecordEviction(set, tag)
			} else {
				c1 := classic.ClassifyMiss(set, tag)
				_, c2 := deep.ClassifyMiss(set, tag)
				if c1 != c2 {
					return false
				}
			}
		}
		return classic.Stats().ConflictMisses == deep.Stats().ConflictMisses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeepCatchesHigherOrderConflicts(t *testing.T) {
	// The 3-way round-robin that blinds the depth-1 MCT: A,B,C rotate
	// through one direct-mapped set, so every miss's victim is two
	// evictions old. Depth 1 sees capacity; depth 2 sees order-2 conflict.
	shallow := MustNewDeep(Config{Sets: 4}, 1)
	deep := MustNewDeep(Config{Sets: 4}, 2)
	tags := []uint64{0xA, 0xB, 0xC}
	resident := uint64(0) // 0 = empty set
	for round := 0; round < 10; round++ {
		for _, tag := range tags {
			if round > 0 {
				if o, c := deep.ClassifyMiss(0, tag); c != Conflict || o != 2 {
					t.Fatalf("round %d tag %#x: deep order=%d class=%v, want order-2 conflict", round, tag, o, c)
				}
				if _, c := shallow.ClassifyMiss(0, tag); c != Capacity {
					t.Fatalf("round %d tag %#x: shallow should be blind to order-2 conflicts", round, tag)
				}
			}
			// The fill evicts the current resident of the 1-way set.
			if resident != 0 {
				shallow.RecordEviction(0, resident)
				deep.RecordEviction(0, resident)
			}
			resident = tag
		}
	}
	if deep.Stats().MissesByOrder[1] == 0 {
		t.Error("no order-2 matches recorded")
	}
}

func TestDeepRecordCoalesces(t *testing.T) {
	m := MustNewDeep(Config{Sets: 2}, 3)
	m.RecordEviction(0, 0x1)
	m.RecordEviction(0, 0x2)
	m.RecordEviction(0, 0x1) // moves 1 to the front, no duplicate
	if o := m.Classify(0, 0x1); o != 1 {
		t.Errorf("tag 1 order = %d, want 1", o)
	}
	if o := m.Classify(0, 0x2); o != 2 {
		t.Errorf("tag 2 order = %d, want 2", o)
	}
	// A third distinct tag fills depth 3; a fourth drops the oldest.
	m.RecordEviction(0, 0x3)
	m.RecordEviction(0, 0x4)
	if o := m.Classify(0, 0x2); o != 0 {
		t.Errorf("oldest tag should have fallen off, got order %d", o)
	}
	if m.Classify(0, 0x4) != 1 || m.Classify(0, 0x3) != 2 || m.Classify(0, 0x1) != 3 {
		t.Error("history order wrong after wrap")
	}
}

func TestDeepInvalidate(t *testing.T) {
	m := MustNewDeep(Config{Sets: 2}, 2)
	m.RecordEviction(1, 0x5)
	m.Invalidate(1)
	if m.Classify(1, 0x5) != 0 {
		t.Error("invalidated set still matches")
	}
}

func TestDeepPartialTags(t *testing.T) {
	m := MustNewDeep(Config{Sets: 2, TagBits: 4}, 2)
	m.RecordEviction(0, 0x12)
	if m.Classify(0, 0x22) != 1 {
		t.Error("partial tags should falsely match mod 16")
	}
	if m.Classify(0, 0x13) != 0 {
		t.Error("differing low bits must not match")
	}
}

func TestDeepStorageBits(t *testing.T) {
	m := MustNewDeep(Config{Sets: 256, TagBits: 10}, 2)
	// 2 tags x 10 bits + 2 bits of count per set.
	if got := m.StorageBits(0); got != 256*(20+2) {
		t.Errorf("storage = %d", got)
	}
}

func TestDeepStatsIsolation(t *testing.T) {
	m := MustNewDeep(Config{Sets: 2}, 2)
	m.RecordEviction(0, 1)
	m.ClassifyMiss(0, 1)
	s := m.Stats()
	s.MissesByOrder[0] = 99
	if m.Stats().MissesByOrder[0] == 99 {
		t.Error("Stats must return a copy")
	}
}
