package core

import "fmt"

// DeepMCT is the multi-tag variant the paper explicitly sets aside ("we
// could store multiple evicted tags per set to identify higher-order
// conflict misses, but we do not consider that optimization"): each set's
// entry holds the tags of the last Depth evicted lines, in eviction order.
//
// A miss matching any stored tag is a conflict near-miss of order ≤ Depth:
// it would have hit a cache with up to Depth more ways. The depth-1 case
// is exactly the paper's MCT. The depth-2+ table closes the MCT's known
// blind spot — rotations through a set (A,B,C round-robin in a
// direct-mapped cache) whose victims are never the *most recent* eviction
// — at a storage cost that still rounds to a few KB.
//
// DeepMCT reports which position matched, so a policy can distinguish
// "one more way would have caught this" from "three more ways would
// have": victim buffers serve low orders best (the paper's near-miss
// argument), so a filter can use the order as a confidence signal.
type DeepMCT struct {
	cfg     Config
	depth   int
	tagMask uint64
	// tags[set*depth .. set*depth+depth) holds the set's eviction history,
	// most recent first; size[set] counts valid entries.
	tags []uint64
	size []uint8

	stats DeepStats
}

// DeepStats counts the deep table's classification decisions by match
// order (order 1 = most recent eviction, the classic MCT case).
type DeepStats struct {
	// MissesByOrder[k] counts misses whose tag matched position k+1;
	// CapacityMisses counts misses with no match at any depth.
	MissesByOrder  []uint64
	CapacityMisses uint64
	Evictions      uint64
}

// ConflictMisses returns the total matches at any order.
func (s DeepStats) ConflictMisses() uint64 {
	var n uint64
	for _, v := range s.MissesByOrder {
		n += v
	}
	return n
}

// NewDeep builds a DeepMCT storing depth evicted tags per set.
func NewDeep(cfg Config, depth int) (*DeepMCT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if depth < 1 || depth > 16 {
		return nil, fmt.Errorf("core: DeepMCT depth must be in [1,16], got %d", depth)
	}
	mask := ^uint64(0)
	if cfg.TagBits > 0 && cfg.TagBits < 64 {
		mask = (uint64(1) << uint(cfg.TagBits)) - 1
	}
	return &DeepMCT{
		cfg:     cfg,
		depth:   depth,
		tagMask: mask,
		tags:    make([]uint64, cfg.Sets*depth),
		size:    make([]uint8, cfg.Sets),
		stats:   DeepStats{MissesByOrder: make([]uint64, depth)},
	}, nil
}

// MustNewDeep is NewDeep that panics on error.
func MustNewDeep(cfg Config, depth int) *DeepMCT {
	m, err := NewDeep(cfg, depth)
	if err != nil {
		panic(err)
	}
	return m
}

// Depth returns the eviction-history depth.
func (m *DeepMCT) Depth() int { return m.depth }

// Stats returns a snapshot of the counters.
func (m *DeepMCT) Stats() DeepStats {
	out := m.stats
	out.MissesByOrder = append([]uint64(nil), m.stats.MissesByOrder...)
	return out
}

// StorageBits returns the table's storage cost (valid entries are encoded
// as a per-set count, ceil(log2(depth+1)) bits).
func (m *DeepMCT) StorageBits(fullTagWidth int) int {
	bits := m.cfg.TagBits
	if bits == 0 {
		bits = fullTagWidth
	}
	cnt := 0
	for v := m.depth; v > 0; v >>= 1 {
		cnt++
	}
	return m.cfg.Sets * (m.depth*bits + cnt)
}

// Classify returns the match order (1-based; 0 means no match — capacity)
// without updating statistics.
func (m *DeepMCT) Classify(set, tag uint64) int {
	t := tag & m.tagMask
	base := int(set) * m.depth
	for i := 0; i < int(m.size[set]); i++ {
		if m.tags[base+i] == t {
			return i + 1
		}
	}
	return 0
}

// ClassifyMiss classifies and counts a miss, returning the match order
// (0 = capacity) and the two-way Class for drop-in compatibility with the
// standard MCT.
func (m *DeepMCT) ClassifyMiss(set, tag uint64) (order int, class Class) {
	order = m.Classify(set, tag)
	if order == 0 {
		m.stats.CapacityMisses++
		return 0, Capacity
	}
	m.stats.MissesByOrder[order-1]++
	return order, Conflict
}

// RecordEviction pushes the evicted tag onto the set's history, most
// recent first. A tag already present moves to the front rather than
// duplicating (the line was re-fetched and evicted again).
func (m *DeepMCT) RecordEviction(set, tag uint64) {
	m.stats.Evictions++
	t := tag & m.tagMask
	base := int(set) * m.depth
	n := int(m.size[set])
	// Find an existing occurrence to coalesce.
	at := -1
	for i := 0; i < n; i++ {
		if m.tags[base+i] == t {
			at = i
			break
		}
	}
	switch {
	case at == 0:
		return // already most recent
	case at > 0:
		copy(m.tags[base+1:base+at+1], m.tags[base:base+at])
	default:
		if n < m.depth {
			m.size[set] = uint8(n + 1)
			n++
		}
		copy(m.tags[base+1:base+n], m.tags[base:base+n-1])
	}
	m.tags[base] = t
}

// Invalidate clears a set's history.
func (m *DeepMCT) Invalidate(set uint64) { m.size[set] = 0 }
