// Package pseudo implements the pseudo-associative (column-associative)
// cache of Section 5.4 and its MCT-enhanced replacement policy.
//
// A pseudo-associative cache keeps direct-mapped hit time for primary-slot
// hits but retries a miss at an alternate slot (the set index with its top
// bit flipped) before going to the next level; a secondary hit costs extra
// cycles and swaps the two lines so the hot one returns to its primary
// slot.
//
// The paper's enhancement biases the eviction choice with conflict bits:
// when exactly one of the two candidate lines entered on a conflict miss,
// the other is evicted regardless of LRU, and the survivor's bit is reset
// (a one-shot reprieve). This protects exactly the lines the extra
// associativity exists to serve, improving the base pseudo-associative
// miss rate from 10.22% to 9.83% in the paper.
package pseudo

import (
	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// slot is one physical cache frame. Frames store full line addresses
// because a frame can hold either a line whose home index is the frame or
// one displaced from the partner frame.
type slot struct {
	line     mem.LineAddr
	valid    bool
	dirty    bool
	conflict bool
	stamp    uint64
}

// System is the pseudo-associative cache, exposed through the same
// assist.System interface as the buffer architectures so the timing layer
// and experiments treat it uniformly. It has no assist buffer; secondary
// hits surface as Outcome.SecondaryHit with Swap set.
type System struct {
	useMCT bool
	mct    *core.MCT
	geom   mem.Geometry
	slots  []slot
	half   uint64 // XOR mask flipping the top index bit
	clock  uint64

	stats assist.Stats
}

// New builds the cache from a direct-mapped configuration (the
// pseudo-associative organization requires Assoc == 1). useMCT enables the
// conflict-bit replacement policy; false gives the base (LRU-between-
// candidates) pseudo-associative cache.
func New(cfg cache.Config, tagBits int, useMCT bool) (*System, error) {
	if cfg.Assoc != 1 {
		cfg.Assoc = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := mem.NewGeometry(cfg.LineSize, cfg.Sets())
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: cfg.Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	return &System{
		useMCT: useMCT,
		mct:    mct,
		geom:   geom,
		slots:  make([]slot, cfg.Sets()),
		half:   uint64(cfg.Sets()) / 2,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg cache.Config, tagBits int, useMCT bool) *System {
	s, err := New(cfg, tagBits, useMCT)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements assist.System.
func (s *System) Name() string {
	if s.useMCT {
		return "pseudo-mct"
	}
	return "pseudo-base"
}

// MCT exposes the classification table.
func (s *System) MCT() *core.MCT { return s.mct }

// homeSet returns the line's primary index.
func (s *System) homeSet(line mem.LineAddr) uint64 { return s.geom.SetOfLine(line) }

// Access implements assist.System.
func (s *System) Access(acc mem.Access) assist.Outcome {
	isStore := acc.Type == mem.Store
	s.stats.Accesses++
	line := s.geom.Line(acc.Addr)
	prim := s.homeSet(line)
	sec := prim ^ s.half
	s.clock++

	if p := &s.slots[prim]; p.valid && p.line == line {
		s.stats.L1Hits++
		p.stamp = s.clock
		if isStore {
			p.dirty = true
		}
		return assist.Outcome{L1Hit: true}
	}
	if q := &s.slots[sec]; q.valid && q.line == line {
		// Secondary hit: swap so the accessed line regains its primary
		// slot. Costs extra latency and occupies the arrays like a swap.
		s.stats.SecondaryHits++
		q.stamp = s.clock
		if isStore {
			q.dirty = true
		}
		s.slots[prim], s.slots[sec] = s.slots[sec], s.slots[prim]
		return assist.Outcome{SecondaryHit: true, Swap: true}
	}

	// Full miss: classify at the line's primary index; the conflict bit is
	// set only on a primary-index MCT match (paper Sec 5.4).
	tag := s.geom.TagOfLine(line)
	class := s.mct.ClassifyMiss(prim, tag)
	s.stats.Misses++
	if class == core.Conflict {
		s.stats.ConflictMisses++
	} else {
		s.stats.CapacityMisses++
	}

	victim := s.chooseVictim(prim, sec)
	wb := s.evict(victim)

	if victim == sec {
		// Rehash: the primary's current occupant retreats to the freed
		// secondary slot, and the new line takes the primary.
		s.slots[sec] = s.slots[prim]
	}
	s.slots[prim] = slot{
		line:     line,
		valid:    true,
		dirty:    isStore,
		conflict: class == core.Conflict,
		stamp:    s.clock,
	}
	return assist.Outcome{Class: class, CacheFill: true, Writeback: wb, Swap: victim == sec}
}

// chooseVictim picks which of the two candidate frames to evict. Base
// policy is LRU between the two; the MCT policy gives a one-shot reprieve
// to a line whose conflict bit is set when the other's is clear.
func (s *System) chooseVictim(prim, sec uint64) uint64 {
	p, q := &s.slots[prim], &s.slots[sec]
	if !p.valid {
		return prim
	}
	if !q.valid {
		return sec
	}
	if s.useMCT && p.conflict != q.conflict {
		if p.conflict {
			p.conflict = false // reprieve spent
			return sec
		}
		q.conflict = false
		return prim
	}
	if p.stamp <= q.stamp {
		return prim
	}
	return sec
}

// evict clears a frame, recording the departed line's tag in the MCT entry
// of its home index (even when it sat in its secondary slot), and returns
// whether a writeback is needed.
func (s *System) evict(frame uint64) bool {
	v := &s.slots[frame]
	if !v.valid {
		return false
	}
	home := s.homeSet(v.line)
	s.mct.RecordEviction(home, s.geom.TagOfLine(v.line))
	dirty := v.dirty
	v.valid = false
	return dirty
}

// Contains implements assist.System.
func (s *System) Contains(addr mem.Addr) (inL1, inBuffer bool) {
	line := s.geom.Line(addr)
	prim := s.homeSet(line)
	sec := prim ^ s.half
	if (s.slots[prim].valid && s.slots[prim].line == line) ||
		(s.slots[sec].valid && s.slots[sec].line == line) {
		return true, false
	}
	return false, false
}

// PrefetchArrived implements assist.System; the pseudo-associative cache
// never prefetches.
func (s *System) PrefetchArrived(mem.LineAddr) bool { return false }

// Stats implements assist.System.
func (s *System) Stats() assist.Stats { return s.stats }
