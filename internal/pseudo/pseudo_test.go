package pseudo

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/mem"
)

func dmConfig() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 1}
}

func load(a mem.Addr) mem.Access  { return mem.Access{Addr: a, Type: mem.Load} }
func store(a mem.Addr) mem.Access { return mem.Access{Addr: a, Type: mem.Store} }

func TestNames(t *testing.T) {
	if MustNew(dmConfig(), 0, false).Name() != "pseudo-base" {
		t.Error("base name wrong")
	}
	if MustNew(dmConfig(), 0, true).Name() != "pseudo-mct" {
		t.Error("mct name wrong")
	}
}

func TestPrimaryHit(t *testing.T) {
	s := MustNew(dmConfig(), 0, false)
	a := mem.Addr(0x1000)
	if out := s.Access(load(a)); out.L1Hit || !out.CacheFill {
		t.Fatalf("cold access = %+v", out)
	}
	if out := s.Access(load(a)); !out.L1Hit {
		t.Fatalf("warm access should be a primary hit")
	}
}

func TestSecondaryHitSwapsToPrimary(t *testing.T) {
	s := MustNew(dmConfig(), 0, false)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000) // same primary set
	s.Access(load(a))
	s.Access(load(b)) // a retreats to the secondary slot (rehash), b takes primary
	if inL1, _ := s.Contains(a); !inL1 {
		t.Fatal("a should survive in its secondary slot — that is the whole point")
	}
	out := s.Access(load(a))
	if !out.SecondaryHit || !out.Swap {
		t.Fatalf("access to displaced line = %+v, want secondary hit with swap", out)
	}
	// After the swap, a is primary again.
	if out := s.Access(load(a)); !out.L1Hit {
		t.Error("swapped line should now hit in its primary slot")
	}
	st := s.Stats()
	if st.SecondaryHits != 1 {
		t.Errorf("secondary hits = %d", st.SecondaryHits)
	}
}

func TestPseudoBeatsDirectMappedOnPingPong(t *testing.T) {
	// The A/B ping-pong that murders a DM cache is entirely absorbed by
	// the pseudo-associative pair of slots.
	s := MustNew(dmConfig(), 0, false)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	s.Access(load(a))
	s.Access(load(b))
	for i := 0; i < 20; i++ {
		if out := s.Access(load(a)); out.Miss() {
			t.Fatalf("iteration %d: a missed", i)
		}
		if out := s.Access(load(b)); out.Miss() {
			t.Fatalf("iteration %d: b missed", i)
		}
	}
}

func TestThreeWayAliasStillMisses(t *testing.T) {
	// Three aliasing lines exceed the two slots; misses continue — and
	// with the MCT policy the conflict-bit holder is protected.
	s := MustNew(dmConfig(), 0, true)
	a, b, c := mem.Addr(0x0000), mem.Addr(0x4000), mem.Addr(0x8000)
	misses := 0
	for i := 0; i < 30; i++ {
		for _, x := range []mem.Addr{a, b, c} {
			if s.Access(load(x)).Miss() {
				misses++
			}
		}
	}
	if misses < 30 {
		t.Errorf("3-way alias produced only %d misses over 90 accesses", misses)
	}
}

func TestMCTPolicyProtectsConflictLine(t *testing.T) {
	s := MustNew(dmConfig(), 0, true)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	c := mem.Addr(0x8000) // third alias
	// Establish the ping-pong so that a re-fill of a classifies conflict
	// and sets its bit.
	s.Access(load(a))
	s.Access(load(b))
	s.Access(load(a)) // secondary hit, swap — a primary, b secondary
	// Evict to make a new conflict: c arrives; victim choice is between a
	// and b by LRU (neither has a conflict bit yet: a entered cold... a's
	// bit is set only if its fill matched the primary-slot MCT entry).
	s.Access(load(c))
	// This is a behavioral smoke test: the MCT variant must stay
	// functionally consistent (no line duplication).
	inA, _ := s.Contains(a)
	inB, _ := s.Contains(b)
	inC, _ := s.Contains(c)
	n := 0
	for _, in := range []bool{inA, inB, inC} {
		if in {
			n++
		}
	}
	if n != 2 {
		t.Errorf("pair of slots should hold exactly 2 of the 3 aliases, holds %d", n)
	}
}

func TestMCTReplacementBiasReducesMisses(t *testing.T) {
	// Construct a stream where LRU evicts the wrong (conflict-prone) line
	// but the conflict-bit reprieve keeps it: hot pair A/B ping-pongs
	// (conflict bits set), and a stream of single-visit lines S_i passes
	// through the same set. Base LRU lets S evict the ping-pong partner;
	// the MCT policy sacrifices the streaming line's slot instead.
	run := func(useMCT bool) uint64 {
		s := MustNew(dmConfig(), 0, useMCT)
		a, b := mem.Addr(0x0000), mem.Addr(0x4000)
		for i := 0; i < 200; i++ {
			s.Access(load(a))
			s.Access(load(b))
			s.Access(load(a))
			s.Access(load(b))
			// One streaming interloper aliasing the same primary set.
			s.Access(load(mem.Addr(0x10000 + uint64(i)*0x4000)))
		}
		return s.Stats().Misses
	}
	base, mct := run(false), run(true)
	if mct > base {
		t.Errorf("MCT replacement bias should not increase misses: base=%d mct=%d", base, mct)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s := MustNew(dmConfig(), 0, false)
	a, b, c := mem.Addr(0x0000), mem.Addr(0x4000), mem.Addr(0x8000)
	s.Access(store(a))
	s.Access(load(b))
	out := s.Access(load(c)) // evicts one of a (dirty) or b
	out2 := s.Access(load(mem.Addr(0xC000)))
	if !out.Writeback && !out2.Writeback {
		t.Error("the dirty line must eventually write back")
	}
}

func TestContainsChecksBothSlots(t *testing.T) {
	s := MustNew(dmConfig(), 0, false)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	s.Access(load(a))
	s.Access(load(b))
	for _, x := range []mem.Addr{a, b} {
		if inL1, inBuf := s.Contains(x); !inL1 || inBuf {
			t.Errorf("Contains(%#x) = %v,%v", x, inL1, inBuf)
		}
	}
	if inL1, _ := s.Contains(0xC000); inL1 {
		t.Error("absent line reported present")
	}
}

func TestPrefetchArrivedRejected(t *testing.T) {
	if MustNew(dmConfig(), 0, false).PrefetchArrived(3) {
		t.Error("pseudo-associative cache never prefetches")
	}
}

func TestForcesDirectMapped(t *testing.T) {
	cfg := dmConfig()
	cfg.Assoc = 2
	s, err := New(cfg, 0, false)
	if err != nil || s == nil {
		t.Fatalf("New should coerce associativity to 1: %v", err)
	}
}

func TestMissClassificationStats(t *testing.T) {
	s := MustNew(dmConfig(), 0, true)
	a, b := mem.Addr(0x0000), mem.Addr(0x4000)
	c := mem.Addr(0x8000)
	for i := 0; i < 10; i++ {
		s.Access(load(a))
		s.Access(load(b))
		s.Access(load(c))
	}
	st := s.Stats()
	if st.Misses == 0 || st.ConflictMisses+st.CapacityMisses != st.Misses {
		t.Errorf("classification accounting inconsistent: %+v", st)
	}
	if s.MCT().Stats().Evictions == 0 {
		t.Error("evictions should be recorded in the MCT")
	}
}

// TestAssistSystemInterface ensures the package satisfies assist.System.
var _ assist.System = (*System)(nil)
