package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
)

// testNode boots an httptest server and returns it plus its host:port
// (the address form the ring and the prober use).
func testNode(t *testing.T, h http.Handler) (*httptest.Server, string) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, strings.TrimPrefix(srv.URL, "http://")
}

func TestNewSingleNodeIsNil(t *testing.T) {
	for _, cfg := range []Config{
		{Self: "a:1"},
		{Self: "a:1", Peers: []string{}},
		{Self: "a:1", Peers: []string{"a:1"}},
		{Self: "a:1", Peers: []string{"a:1", "", "a:1"}},
	} {
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		if c != nil {
			t.Fatalf("New(%+v) = %v, want nil (single node)", cfg, c)
		}
	}
	// Peers without Self is a config error, not a silent single node.
	if _, err := New(Config{Peers: []string{"b:2"}}); err == nil {
		t.Fatal("New with peers but no self: want error")
	}
}

func TestNilClusterIsSafe(t *testing.T) {
	var c *Cluster
	if c.Enabled() {
		t.Error("nil cluster Enabled() = true")
	}
	if addr, local := c.Owner("k"); !local || addr != "" {
		t.Errorf("nil cluster Owner = (%q, %v), want local", addr, local)
	}
	if c.Counters() != (Counters{}) {
		t.Error("nil cluster Counters() nonzero")
	}
	if _, _, err := c.ExecCell(t.Context(), "x", CellRequest{}, ForwardMeta{}); err == nil {
		t.Error("nil cluster ExecCell: want error")
	}
	if _, ok, err := c.PullCache(t.Context(), "x", "s", "k"); ok || err != nil {
		t.Errorf("nil cluster PullCache = (%v, %v), want clean miss", ok, err)
	}
	c.Start()
	c.Close()
	c.NoteSteal()
	c.NoteFill()
}

func TestOwnerRoutesToSelfAndPeers(t *testing.T) {
	c, err := New(Config{Self: "self:1", Peers: []string{"peer-a:1", "peer-b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Enabled() {
		t.Fatal("Enabled() = false with two peers")
	}
	seen := map[string]int{}
	for _, k := range testKeys(3000) {
		addr, local := c.Owner(k)
		if local != (addr == "self:1") {
			t.Fatalf("Owner(%q) = (%q, local=%v): inconsistent", k, addr, local)
		}
		seen[addr]++
	}
	for _, member := range []string{"self:1", "peer-a:1", "peer-b:1"} {
		if seen[member] == 0 {
			t.Errorf("member %s owns no keys at all", member)
		}
	}
}

func TestProbeEjectAndRestore(t *testing.T) {
	var sick atomic.Bool
	_, goodAddr := testNode(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	_, flakyAddr := testNode(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			w.WriteHeader(http.StatusServiceUnavailable) // draining counts unhealthy
			return
		}
		w.WriteHeader(http.StatusOK)
	}))

	c, err := New(Config{
		Self:          "self:1",
		Peers:         []string{goodAddr, flakyAddr},
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	ringHas := func(addr string) bool {
		for _, p := range c.Ring().Peers() {
			if p == addr {
				return true
			}
		}
		return false
	}
	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	waitFor("initial 3-member ring", func() bool { return len(c.Ring().Peers()) == 3 })

	sick.Store(true)
	waitFor("flaky peer ejected", func() bool { return !ringHas(flakyAddr) })
	if !ringHas(goodAddr) {
		t.Error("healthy peer ejected alongside the sick one")
	}
	if got := c.Counters().Ejections; got != 1 {
		t.Errorf("Ejections = %d, want 1", got)
	}

	sick.Store(false)
	waitFor("flaky peer restored", func() bool { return ringHas(flakyAddr) })
	if got := c.Counters().Restores; got != 1 {
		t.Errorf("Restores = %d, want 1", got)
	}
	if len(c.Ring().Peers()) != 3 {
		t.Errorf("ring has %v, want all 3 members", c.Ring().Peers())
	}
}

func TestExecCellSingleflight(t *testing.T) {
	var hits atomic.Int64
	_, addr := testNode(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/cell" {
			http.NotFound(w, r)
			return
		}
		hits.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open so callers pile up
		w.Header().Set(CacheHeader, "miss")
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"v":1}`)
	}))
	c, err := New(Config{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers = 8
	var wg sync.WaitGroup
	results := make([]string, callers)
	req := CellRequest{Slug: "fig2", Payload: json.RawMessage(`{}`), Key: "kkkk"}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, hit, err := c.ExecCell(t.Context(), addr, req, ForwardMeta{})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if hit {
				t.Errorf("caller %d: hit=true, want miss", i)
			}
			results[i] = string(raw)
		}(i)
	}
	wg.Wait()
	if got := hits.Load(); got != 1 {
		t.Errorf("owner saw %d requests for one cell, want 1 (singleflight)", got)
	}
	for i, r := range results {
		if r != `{"v":1}` {
			t.Errorf("caller %d got %q", i, r)
		}
	}
	if got := c.Counters().Forwards; got != 1 {
		t.Errorf("Forwards = %d, want 1", got)
	}
}

func TestForwardPropagatesMeta(t *testing.T) {
	var gotTrace, gotPrio, gotIdem atomic.Value
	_, addr := testNode(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTrace.Store(r.Header.Get(TraceIDHeader))
		gotPrio.Store(r.Header.Get(PriorityHeader))
		gotIdem.Store(r.Header.Get(client.IdempotencyHeader))
		w.Header().Set(CacheHeader, "hit")
		fmt.Fprint(w, `{}`)
	}))
	c, err := New(Config{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fm := ForwardMeta{TraceID: "job-123", Priority: "low", IdemKey: "caller-key-42"}
	_, hit, err := c.ExecCell(t.Context(), addr, CellRequest{Slug: "s", Payload: json.RawMessage(`{}`), Key: "k"}, fm)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("hit=false, want true (owner said hit)")
	}
	if got := gotTrace.Load(); got != "job-123" {
		t.Errorf("trace header = %v, want job-123", got)
	}
	if got := gotPrio.Load(); got != "low" {
		t.Errorf("priority header = %v, want low", got)
	}
	if got := gotIdem.Load(); got != "caller-key-42" {
		t.Errorf("idempotency key = %v, want caller-key-42 (must propagate unchanged)", got)
	}
}

func TestPullCache(t *testing.T) {
	_, addr := testNode(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/present") && r.URL.Query().Get("slug") == "fig2" {
			fmt.Fprint(w, `{"cached":true}`)
			return
		}
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no cached result","status":404}`)
	}))
	c, err := New(Config{Self: "self:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	raw, ok, err := c.PullCache(t.Context(), addr, "fig2", "present")
	if err != nil || !ok {
		t.Fatalf("PullCache(present) = (%v, %v), want hit", ok, err)
	}
	if string(raw) != `{"cached":true}` {
		t.Errorf("pulled %q", raw)
	}
	if _, ok, err := c.PullCache(t.Context(), addr, "fig2", "absent"); ok || err != nil {
		t.Errorf("PullCache(absent) = (%v, %v), want clean miss (404 is not an error)", ok, err)
	}
	cs := c.Counters()
	if cs.CachePulls != 2 || cs.PullHits != 1 {
		t.Errorf("pulls=%d hits=%d, want 2/1", cs.CachePulls, cs.PullHits)
	}
	if _, _, err := c.PullCache(t.Context(), "nosuch:1", "fig2", "k"); err == nil {
		t.Error("PullCache(unknown peer): want error")
	}
}

func TestExecCellLeaderFailureRetries(t *testing.T) {
	// First request fails terminally (400 is not retried by the client);
	// the waiter must become the new leader and succeed, not inherit the
	// dead leader's failure.
	var n atomic.Int64
	_, addr := testNode(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			time.Sleep(20 * time.Millisecond) // let the waiter enqueue
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":"bad","status":400}`)
			return
		}
		w.Header().Set(CacheHeader, "miss")
		fmt.Fprint(w, `{"v":2}`)
	}))
	c, err := New(Config{Self: "self:1", Peers: []string{addr}, ForwardAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	req := CellRequest{Slug: "s", Payload: json.RawMessage(`{}`), Key: "retry-key"}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	raws := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _, err := c.ExecCell(t.Context(), addr, req, ForwardMeta{})
			errs[i], raws[i] = err, string(raw)
		}(i)
	}
	wg.Wait()
	okCount := 0
	for i := range errs {
		if errs[i] == nil {
			okCount++
			if raws[i] != `{"v":2}` {
				t.Errorf("caller %d succeeded with %q", i, raws[i])
			}
		}
	}
	if okCount == 0 {
		t.Error("no caller succeeded: waiter inherited the leader's failure instead of retrying")
	}
}
