package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
)

// Wire protocol headers. TraceIDHeader carries the originating job's
// trace ID so the owner's spans land in the same trace; NodeHeader
// names the node that served a response; CacheHeader reports whether
// the owner served the cell from its memo cache.
const (
	TraceIDHeader = "X-Mct-Trace-Id"
	NodeHeader    = "X-Mct-Node"
	CacheHeader   = "X-Mct-Cache"
)

// CellRequest is the body of POST /v1/cluster/cell: one memoizable unit
// of work, addressed by slug and its canonical JSON payload. Key is the
// memo key the forwarder derived (the owner re-derives it from the
// payload; carrying it here lets both sides agree on the singleflight
// identity without trusting each other's derivation).
type CellRequest struct {
	Slug    string          `json:"slug"`
	Payload json.RawMessage `json:"payload"`
	Key     string          `json:"key,omitempty"`
}

// ForwardMeta is the caller context a forward must carry across the
// wire unchanged: the job's trace ID, the brownout priority, and the
// idempotency key the owner dedupes on.
type ForwardMeta struct {
	TraceID  string
	Priority string
	IdemKey  string
}

// Config shapes one node's view of the fleet.
type Config struct {
	// Self is this node's advertised address (must appear in Peers or is
	// added implicitly). Required.
	Self string
	// Peers is the static fleet membership, host:port each.
	Peers []string
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	VNodes int
	// Seed parameterizes the ring hash. Every node in a fleet must use
	// the same seed or they will route cells to different owners.
	Seed uint64
	// ProbeInterval is the health-check cadence (0 = 500ms);
	// ProbeTimeout bounds one probe (0 = 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold consecutive probe failures eject a peer from the
	// ring; one success restores it (0 = 2).
	FailThreshold int
	// StealAfter arms work stealing: a forwarded cell still unanswered
	// after this delay is raced against a local pull-then-compute.
	// Zero disables stealing.
	StealAfter time.Duration
	// ForwardAttempts bounds the resilient client's tries per forward
	// (0 = 4).
	ForwardAttempts int
	// HTTPClient overrides the transport for forwards, pulls, and
	// probes (tests inject httptest or chaos transports).
	HTTPClient *http.Client
	// Logf receives membership transitions. Nil discards.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.ForwardAttempts <= 0 {
		c.ForwardAttempts = 4
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// peer is one remote fleet member: its resilient client plus health
// state. fails is touched only by the prober goroutine; healthy is the
// shared flag ring rebuilds read.
type peer struct {
	addr    string
	cl      *client.Client
	healthy atomic.Bool
	fails   int
}

// Counters is a snapshot of the cluster's activity, feeding the
// mct_cluster_* metrics.
type Counters struct {
	Forwards     uint64 // cells sent to a remote owner
	ForwardFails uint64 // forwards that exhausted retries (fell back local)
	Steals       uint64 // straggler cells rescued by the steal pass
	Ejections    uint64 // peers removed from the ring by failed probes
	Restores     uint64 // ejected peers readmitted
	CacheFills   uint64 // remote results written through to the local cache
	CachePulls   uint64 // GET /v1/cache attempts against peers
	PullHits     uint64 // pulls that found the entry remotely
}

// Cluster is one node's membership, routing, and forwarding state. A
// nil *Cluster is valid and means "single node": every method returns
// the zero-cost local answer.
type Cluster struct {
	cfg   Config
	self  string
	peers []*peer // remote members only, fixed at New

	ring atomic.Pointer[Ring]

	// inflight singleflights concurrent forwards of the same cell (by
	// memo key), mirroring the idempotency store's leader/waiter shape:
	// N goroutines needing one remote cell issue one HTTP request.
	mu       sync.Mutex
	inflight map[string]*flight

	forwards     atomic.Uint64
	forwardFails atomic.Uint64
	steals       atomic.Uint64
	ejections    atomic.Uint64
	restores     atomic.Uint64
	fills        atomic.Uint64
	pulls        atomic.Uint64
	pullHits     atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Cluster from cfg. Returns (nil, nil) when cfg.Peers is
// empty or names only Self — a single-node fleet needs no cluster at
// all, and the nil receiver keeps that path zero-cost.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	remote := make([]string, 0, len(cfg.Peers))
	seen := map[string]bool{cfg.Self: true}
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Self || seen[p] {
			continue
		}
		seen[p] = true
		remote = append(remote, p)
	}
	if len(remote) == 0 {
		return nil, nil
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: -self is required when peers are configured")
	}
	c := &Cluster{
		cfg:      cfg,
		self:     cfg.Self,
		inflight: map[string]*flight{},
		stop:     make(chan struct{}),
	}
	for _, addr := range remote {
		cl, err := client.New(client.Options{
			BaseURL:     "http://" + addr,
			HTTPClient:  cfg.HTTPClient,
			MaxAttempts: cfg.ForwardAttempts,
			BaseBackoff: 50 * time.Millisecond,
			MaxBackoff:  2 * time.Second,
			ClientID:    "peer:" + cfg.Self,
			Logf:        cfg.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %s: %w", addr, err)
		}
		p := &peer{addr: addr, cl: cl}
		p.healthy.Store(true) // innocent until probed guilty
		c.peers = append(c.peers, p)
	}
	c.rebuildRing()
	return c, nil
}

// Start launches the health prober. Separate from New so tests can
// exercise routing with probing off.
func (c *Cluster) Start() {
	if c == nil {
		return
	}
	c.wg.Add(1)
	go c.probeLoop()
}

// Close stops the prober and waits for it. Idempotent, nil-safe.
func (c *Cluster) Close() {
	if c == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Enabled reports whether cluster routing is active.
func (c *Cluster) Enabled() bool { return c != nil && len(c.peers) > 0 }

// Self returns this node's advertised address ("" on the nil cluster).
func (c *Cluster) Self() string {
	if c == nil {
		return ""
	}
	return c.self
}

// StealAfterDelay returns the configured straggler-steal delay (0 =
// stealing off).
func (c *Cluster) StealAfterDelay() time.Duration {
	if c == nil {
		return 0
	}
	return c.cfg.StealAfter
}

// Counters snapshots the activity counters.
func (c *Cluster) Counters() Counters {
	if c == nil {
		return Counters{}
	}
	return Counters{
		Forwards:     c.forwards.Load(),
		ForwardFails: c.forwardFails.Load(),
		Steals:       c.steals.Load(),
		Ejections:    c.ejections.Load(),
		Restores:     c.restores.Load(),
		CacheFills:   c.fills.Load(),
		CachePulls:   c.pulls.Load(),
		PullHits:     c.pullHits.Load(),
	}
}

// NoteSteal counts one straggler steal (the service's hedge fires it).
func (c *Cluster) NoteSteal() {
	if c != nil {
		c.steals.Add(1)
	}
}

// NoteFill counts one remote result written through to the local cache.
func (c *Cluster) NoteFill() {
	if c != nil {
		c.fills.Add(1)
	}
}

// Ring returns the current ring (healthy members only).
func (c *Cluster) Ring() *Ring {
	if c == nil {
		return nil
	}
	return c.ring.Load()
}

// Owner maps a memo key to its owning node. local is true when this
// node owns the key (or the cluster is nil/degraded to self-only).
func (c *Cluster) Owner(key string) (addr string, local bool) {
	if c == nil {
		return "", true
	}
	owner := c.ring.Load().Owner(key)
	if owner == "" || owner == c.self {
		return c.self, true
	}
	return owner, false
}

// rebuildRing recomputes the ring over self plus the currently-healthy
// peers and publishes it atomically.
func (c *Cluster) rebuildRing() {
	members := []string{c.self}
	for _, p := range c.peers {
		if p.healthy.Load() {
			members = append(members, p.addr)
		}
	}
	c.ring.Store(NewRing(members, c.cfg.VNodes, c.cfg.Seed))
}

// probeLoop drives the health checks: every ProbeInterval each peer
// gets one GET /healthz; FailThreshold consecutive failures eject it
// from the ring (its cells compute locally until it recovers), one
// success restores it.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Cluster) probeAll() {
	for _, p := range c.peers {
		ok := c.probeOne(p)
		switch {
		case ok && !p.healthy.Load():
			p.fails = 0
			p.healthy.Store(true)
			c.restores.Add(1)
			c.rebuildRing()
			c.logf("cluster: peer %s restored to ring", p.addr)
		case ok:
			p.fails = 0
		case !ok && p.healthy.Load():
			p.fails++
			if p.fails >= c.cfg.FailThreshold {
				p.healthy.Store(false)
				c.ejections.Add(1)
				c.rebuildRing()
				c.logf("cluster: peer %s ejected after %d failed probes", p.addr, p.fails)
			}
		}
	}
}

// probeOne issues a single bounded health check. A draining peer (503
// healthz) counts as unhealthy: it is shutting down, route around it.
func (c *Cluster) probeOne(p *peer) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// flight is one in-progress remote cell execution shared by every
// concurrent local caller that needs the same key.
type flight struct {
	done chan struct{}
	raw  json.RawMessage
	hit  bool
	err  error
}

// ExecCell forwards one cell to its remote owner, singleflighted on the
// memo key: concurrent callers share one HTTP request (and therefore
// one remote computation), the same collapsing the idempotency store
// does server-side. hit reports the owner's cache disposition. The
// error, if any, is terminal after the client's retries — callers fall
// back to pulling or computing locally.
func (c *Cluster) ExecCell(ctx context.Context, owner string, req CellRequest, fm ForwardMeta) (json.RawMessage, bool, error) {
	if c == nil {
		return nil, false, fmt.Errorf("cluster: not configured")
	}
	fkey := owner + "\x00" + req.Key
	for {
		c.mu.Lock()
		if f, ok := c.inflight[fkey]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil && ctx.Err() == nil {
					// The leader failed (possibly canceled); this caller
					// retries as the new leader rather than inheriting a
					// failure that was never its own.
					if _, lead := c.claim(fkey); !lead {
						continue
					}
					return c.lead(ctx, fkey, owner, req, fm)
				}
				return f.raw, f.hit, f.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		c.inflight[fkey] = &flight{done: make(chan struct{})}
		c.mu.Unlock()
		return c.lead(ctx, fkey, owner, req, fm)
	}
}

// claim attempts to become leader for fkey; ok=false means another
// flight is already open (the caller should wait on it via the loop).
func (c *Cluster) claim(fkey string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.inflight[fkey]; ok {
		return nil, false
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[fkey] = f
	return f, true
}

// lead executes the forward as the flight leader and resolves waiters.
func (c *Cluster) lead(ctx context.Context, fkey, owner string, req CellRequest, fm ForwardMeta) (json.RawMessage, bool, error) {
	raw, hit, err := c.forward(ctx, owner, req, fm)
	c.mu.Lock()
	f := c.inflight[fkey]
	delete(c.inflight, fkey)
	c.mu.Unlock()
	if f != nil {
		f.raw, f.hit, f.err = raw, hit, err
		close(f.done)
	}
	return raw, hit, err
}

// forward issues the actual POST /v1/cluster/cell through the peer's
// resilient client (retries, backoff, Retry-After all apply).
func (c *Cluster) forward(ctx context.Context, owner string, req CellRequest, fm ForwardMeta) (json.RawMessage, bool, error) {
	p := c.peerFor(owner)
	if p == nil {
		return nil, false, fmt.Errorf("cluster: unknown peer %q", owner)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: encoding cell: %w", err)
	}
	c.forwards.Add(1)
	hdr := http.Header{}
	if fm.TraceID != "" {
		hdr.Set(TraceIDHeader, fm.TraceID)
	}
	if fm.Priority != "" {
		hdr.Set(PriorityHeader, fm.Priority)
	}
	resp, err := p.cl.Do(ctx, client.Request{
		Method:         http.MethodPost,
		Path:           "/v1/cluster/cell",
		Body:           body,
		ContentType:    "application/json",
		Header:         hdr,
		IdempotencyKey: fm.IdemKey,
	})
	if err != nil {
		c.forwardFails.Add(1)
		return nil, false, err
	}
	return resp.Body, resp.Header.Get(CacheHeader) == "hit", nil
}

// PullCache fetches a finished cell from a peer's memo cache (GET
// /v1/cache/{key}) without triggering any computation. ok=false on a
// clean remote miss; err on transport failure.
func (c *Cluster) PullCache(ctx context.Context, owner, slug, key string) (json.RawMessage, bool, error) {
	if c == nil {
		return nil, false, nil
	}
	p := c.peerFor(owner)
	if p == nil {
		return nil, false, fmt.Errorf("cluster: unknown peer %q", owner)
	}
	c.pulls.Add(1)
	resp, err := p.cl.Do(ctx, client.Request{
		Method:        http.MethodGet,
		Path:          "/v1/cache/" + key + "?slug=" + url.QueryEscape(slug),
		NoIdempotency: true,
	})
	if err != nil {
		var ce *client.Error
		if errors.As(err, &ce) && ce.Status == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	c.pullHits.Add(1)
	return resp.Body, true, nil
}

func (c *Cluster) peerFor(addr string) *peer {
	for _, p := range c.peers {
		if p.addr == addr {
			return p
		}
	}
	return nil
}

// PriorityHeader mirrors service.PriorityHeader (asserted equal by
// test) — cluster cannot import service without a cycle.
const PriorityHeader = "X-Mct-Priority"
