package cluster

import (
	"fmt"
	"math"
	"testing"
)

// testKeys generates n deterministic pseudo-keys shaped like memo keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	x := uint64(0x243f6a8885a308d3)
	for i := range keys {
		// splitmix64 step, hex-rendered: deterministic, well spread.
		x += 0x9e3779b97f4a7c15
		z := (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		keys[i] = fmt.Sprintf("%016x%016x%016x%016x", z, z^x, x, z>>1)
	}
	return keys
}

// TestRingGolden pins concrete ownership decisions. These values were
// computed once and must never change: every node in a fleet routes by
// this function, so a silent change to the hash or the vnode naming
// scheme would split a mixed-version fleet's routing. If this test
// fails, the ring format changed — that requires a coordinated fleet
// restart and a deliberate update here.
func TestRingGolden(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "c:3"}, 128, 42)
	golden := map[string]string{
		"0000000000000000000000000000000000000000000000000000000000000000": "c:3",
		"4242424242424242424242424242424242424242424242424242424242424242": "a:1",
		"deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef": "a:1",
		"ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff": "b:2",
		"cell-key-alpha": "b:2",
		"cell-key-beta":  "c:3",
		"cell-key-gamma": "c:3",
		"cell-key-delta": "a:1",
	}
	for k, want := range golden {
		if got := r.Owner(k); got != want {
			t.Errorf("Owner(%q) = %q, want %q (ring hash scheme changed!)", k, got, want)
		}
	}
}

// TestRingDeterministic: the ring is a pure function of (peers, vnodes,
// seed) — peer order and duplicates must not matter, and two
// independently built rings must agree on every key (this is what
// stands in for cross-process determinism: there is no shared state two
// builds could possibly communicate through).
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 128, 7)
	b := NewRing([]string{"n3:3", "n1:1", "n2:2", "n1:1", ""}, 128, 7)
	for _, k := range testKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("peer order changed ownership of %q: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
	// A different seed must (overwhelmingly) produce a different routing.
	c := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 128, 8)
	diff := 0
	keys := testKeys(2000)
	for _, k := range keys {
		if a.Owner(k) != c.Owner(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed changed no ownership at all")
	}
	_ = keys
}

// TestRingDistribution: at DefaultVNodes (128) and 3 peers, each peer
// owns within 10% of a uniform share — the acceptance bound the vnode
// count was chosen for.
func TestRingDistribution(t *testing.T) {
	peers := []string{"node-a:8047", "node-b:8047", "node-c:8047"}
	r := NewRing(peers, DefaultVNodes, 0)
	const n = 30000
	counts := map[string]int{}
	for _, k := range testKeys(n) {
		counts[r.Owner(k)]++
	}
	want := float64(n) / float64(len(peers))
	for _, p := range peers {
		got := float64(counts[p])
		dev := math.Abs(got-want) / want
		t.Logf("%s owns %d/%d (%.1f%% deviation from uniform)", p, counts[p], n, dev*100)
		if dev > 0.10 {
			t.Errorf("%s owns %.0f keys, want %.0f ±10%%", p, got, want)
		}
	}
}

// TestRingMinimalRemap: ejecting one of N peers moves only that peer's
// keys (≈1/N of all keys) and moves no key between surviving peers;
// restoring it returns every key to its original owner exactly. This is
// THE consistent-hashing property — it is what makes health-driven
// ejection cheap (the survivors' caches stay valid).
func TestRingMinimalRemap(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3", "d:4"}
	full := NewRing(peers, DefaultVNodes, 3)
	without := NewRing([]string{"a:1", "b:2", "d:4"}, DefaultVNodes, 3)

	const n = 20000
	keys := testKeys(n)
	before := make([]string, n)
	moved := 0
	for i, k := range keys {
		before[i] = full.Owner(k)
		after := without.Owner(k)
		if before[i] == "c:3" {
			if after == "c:3" {
				t.Fatalf("key %q still owned by ejected peer", k)
			}
			moved++
			continue
		}
		if after != before[i] {
			t.Fatalf("key %q moved %q→%q though its owner %q survived", k, before[i], after, before[i])
		}
	}
	frac := float64(moved) / float64(n)
	t.Logf("ejecting 1 of %d peers remapped %.1f%% of keys (ideal %.1f%%)", len(peers), frac*100, 100.0/float64(len(peers)))
	if frac < 1.0/(2*float64(len(peers))) || frac > 2.0/float64(len(peers)) {
		t.Errorf("remap fraction %.3f outside [1/2N, 2/N] around 1/N = %.3f", frac, 1.0/float64(len(peers)))
	}

	// Restore: rebuilding with the full membership is bit-identical.
	restored := NewRing(peers, DefaultVNodes, 3)
	for i, k := range keys {
		if got := restored.Owner(k); got != before[i] {
			t.Fatalf("after restore key %q owned by %q, want %q", k, got, before[i])
		}
	}
}

// TestRingEmptyAndNil: the degenerate rings callers lean on — empty
// membership owns nothing ("" = local), nil ring is safe.
func TestRingEmptyAndNil(t *testing.T) {
	if got := NewRing(nil, 0, 0).Owner("k"); got != "" {
		t.Errorf("empty ring Owner = %q, want \"\"", got)
	}
	var r *Ring
	if got := r.Owner("k"); got != "" {
		t.Errorf("nil ring Owner = %q, want \"\"", got)
	}
	if ps := r.Peers(); ps != nil {
		t.Errorf("nil ring Peers = %v, want nil", ps)
	}
	one := NewRing([]string{"solo:1"}, 4, 0)
	for _, k := range testKeys(50) {
		if got := one.Owner(k); got != "solo:1" {
			t.Fatalf("single-peer ring Owner(%q) = %q", k, got)
		}
	}
}
