// Package cluster shards the mctd service into a cache-coherent fleet:
// a deterministic consistent-hash ring assigns every memoized cell (the
// SHA-256 keys runner.Memo already computes) to exactly one owning
// node, the service layer forwards remote-owned cells over the
// resilient internal/client, and finished results flow back into the
// local memo cache so a cell computed anywhere replays as a hit
// fleet-wide — the paperbench↔mctd shared-cache property, extended
// across the network.
//
// The subsystem is strictly additive: with no peers configured the
// *Cluster is nil, every method no-ops on the nil receiver (the same
// convention runner's nil *Cache and obs's nil *Span follow), and the
// service behaves exactly as a single node.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per peer. 128 keeps the
// ownership distribution within a few percent of uniform for small
// fleets (the ring test pins <10% deviation at 3 nodes) while the ring
// stays tiny — a 16-node fleet is 2048 points, one binary search each
// lookup.
const DefaultVNodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the peer that owns the arc ending there.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring is an immutable consistent-hash ring. Rebuilding on membership
// change (rather than mutating) keeps lookups lock-free: the Cluster
// swaps rings through an atomic pointer.
//
// Determinism matters more than speed here: the ring is a pure function
// of (peers, vnodes, seed), built from SHA-256 — no map iteration, no
// process-local randomness — so every node in a fleet that agrees on
// the peer list computes the identical ring and routes every key to the
// same owner without any coordination protocol.
type Ring struct {
	points []ringPoint
	peers  []string // sorted, deduplicated
	vnodes int
	seed   uint64
}

// ringHash positions a string on the hash circle: the first 8 bytes of
// SHA-256 over the seed and the string. SHA-256 rather than a fast
// non-crypto hash because ring construction is rare (membership
// changes) and lookups hash only the 64-hex-char memo key; uniformity
// and cross-platform stability are what's load-bearing.
func ringHash(seed uint64, s string) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h := sha256.New()
	h.Write(buf[:])
	h.Write([]byte(s))
	var sum [sha256.Size]byte
	return binary.LittleEndian.Uint64(h.Sum(sum[:0])[:8])
}

// NewRing builds the ring over peers (deduplicated, order-insensitive).
// vnodes <= 0 defaults to DefaultVNodes. An empty peer list yields a
// ring whose Owner always returns "", which callers treat as
// everything-is-local.
func NewRing(peers []string, vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(peers))
	seen := map[string]bool{}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, vnodes: vnodes, seed: seed}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	// Stratified placement: vnode i of every peer lands inside stratum i
	// (the circle split into vnodes equal arcs), at a hash-derived offset
	// within it. Pure random placement lets a peer's points clump, and at
	// 128 vnodes that clumping alone pushes ownership shares past 10%
	// deviation; stratification guarantees every peer one point per
	// stratum, so only the within-stratum ordering varies and shares
	// concentrate tightly around 1/N. Minimal remap is untouched —
	// removing a peer still just drops its points, handing each of its
	// arcs to the next surviving point.
	width := (^uint64(0))/uint64(vnodes) + 1
	for _, p := range uniq {
		for i := 0; i < vnodes; i++ {
			h := ringHash(seed, fmt.Sprintf("%s#%d", p, i))
			var off uint64
			if width != 0 {
				off = h % width
			} else {
				off = h // vnodes == 1: the stratum is the whole circle
			}
			r.points = append(r.points, ringPoint{
				hash: uint64(i)*width + off,
				peer: p,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by peer name so the ring
		// stays a pure function of its inputs.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Owner returns the peer owning key: the first ring point clockwise
// from the key's position (wrapping past the top). Empty string when
// the ring has no peers.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := ringHash(r.seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Peers returns the ring's member list (sorted, deduplicated).
func (r *Ring) Peers() []string {
	if r == nil {
		return nil
	}
	return append([]string(nil), r.peers...)
}
