package workload

import (
	"testing"

	"repro/internal/trace"
)

func TestSuiteRegistry(t *testing.T) {
	s := Suite()
	if len(s) != 16 {
		t.Fatalf("suite has %d benchmarks, want 16", len(s))
	}
	seen := map[string]bool{}
	for _, b := range s {
		if b.Name == "" || b.Description == "" || b.Build == nil {
			t.Errorf("benchmark %q incompletely defined", b.Name)
		}
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
	// Sorted by name.
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Error("Suite() not sorted")
			break
		}
	}
}

func TestCarriedSubset(t *testing.T) {
	c := Carried()
	if len(c) != 10 {
		t.Fatalf("carried suite has %d, want 10", len(c))
	}
	for _, b := range c {
		if b == nil {
			t.Fatal("carried entry missing from registry")
		}
		if got, ok := ByName(b.Name); !ok || got != b {
			t.Errorf("carried benchmark %q not resolvable", b.Name)
		}
	}
	// The paper's headline benchmark must be carried.
	for _, name := range []string{"tomcatv", "swim", "turb3d"} {
		found := false
		for _, b := range c {
			found = found || b.Name == name
		}
		if !found {
			t.Errorf("%s missing from carried suite", name)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := ByName("tomcatv"); !ok {
		t.Error("tomcatv missing")
	}
	if _, ok := ByName("doom"); ok {
		t.Error("nonexistent benchmark found")
	}
	if len(Names()) != len(Suite()) {
		t.Error("Names/Suite length mismatch")
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	for _, b := range Suite() {
		s1 := trace.NewLimit(b.Stream(1234), 5000)
		s2 := trace.NewLimit(b.Stream(1234), 5000)
		var i1, i2 trace.Instr
		for n := 0; ; n++ {
			ok1, ok2 := s1.Next(&i1), s2.Next(&i2)
			if ok1 != ok2 {
				t.Fatalf("%s: streams desynced at %d", b.Name, n)
			}
			if !ok1 {
				break
			}
			if i1 != i2 {
				t.Fatalf("%s: instruction %d differs: %+v vs %+v", b.Name, n, i1, i2)
			}
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	b, _ := ByName("gcc")
	a1 := trace.Drain(trace.NewLimit(b.Stream(1), 2000))
	a2 := trace.Drain(trace.NewLimit(b.Stream(2), 2000))
	same := 0
	for i := range a1 {
		if a1[i] == a2[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamsShareNothing(t *testing.T) {
	// Two streams of the same benchmark must not share kernel state:
	// draining one must not perturb the other.
	b, _ := ByName("tomcatv")
	s1 := b.Stream(9)
	ref := trace.Drain(trace.NewLimit(b.Stream(9), 1000))
	trace.Skip(s1, 500) // advance s1 arbitrarily
	s2 := b.Stream(9)
	got := trace.Drain(trace.NewLimit(s2, 1000))
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatal("streams share mutable kernel state")
		}
	}
}

func TestInstructionMixSanity(t *testing.T) {
	for _, b := range Suite() {
		counts, total := trace.CountKinds(trace.NewLimit(b.Stream(DefaultSeed), 40_000))
		memOps := counts[trace.Load] + counts[trace.Store]
		branches := counts[trace.Branch]
		fp := counts[trace.FPOp] + counts[trace.FPDiv]
		memFrac := float64(memOps) / float64(total)
		if memFrac < 0.10 || memFrac > 0.60 {
			t.Errorf("%s: memory fraction %.2f outside [0.10, 0.60]", b.Name, memFrac)
		}
		if branches == 0 {
			t.Errorf("%s: no branches", b.Name)
		}
		if counts[trace.Load] == 0 || counts[trace.Store] == 0 {
			t.Errorf("%s: missing loads or stores", b.Name)
		}
		if b.FP && fp == 0 {
			t.Errorf("%s: FP benchmark without FP ops", b.Name)
		}
		if !b.FP && fp > total/10 {
			t.Errorf("%s: integer benchmark with %d FP ops", b.Name, fp)
		}
	}
}

func TestRegistersStayInRange(t *testing.T) {
	for _, b := range Suite() {
		s := trace.NewLimit(b.Stream(DefaultSeed), 20_000)
		var in trace.Instr
		for s.Next(&in) {
			if in.Dest >= trace.NumRegs || in.Src1 >= trace.NumRegs || in.Src2 >= trace.NumRegs {
				t.Fatalf("%s: register out of range: %+v", b.Name, in)
			}
			if in.Op.IsMem() && in.Addr == 0 {
				t.Fatalf("%s: memory op with zero address", b.Name)
			}
		}
	}
}

func TestPCsFallInCodeSegment(t *testing.T) {
	b, _ := ByName("swim")
	s := trace.NewLimit(b.Stream(DefaultSeed), 10_000)
	var in trace.Instr
	for s.Next(&in) {
		if in.PC < codeBase || in.PC > codeBase+0x100000 {
			t.Fatalf("PC %#x outside code segment", in.PC)
		}
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Base: 0x1000, Size: 4 * 64}
	if r.LineCount() != 4 {
		t.Errorf("LineCount = %d", r.LineCount())
	}
	if r.LineAddr(0) != 0x1000 || r.LineAddr(3) != 0x10c0 {
		t.Error("LineAddr wrong")
	}
	if r.LineAddr(4) != 0x1000 {
		t.Error("LineAddr should wrap")
	}
}

func TestAliasGroupSeparation(t *testing.T) {
	g := aliasGroup(0, 3, 64*kb, sepBoth)
	if len(g) != 3 {
		t.Fatalf("group size %d", len(g))
	}
	for i := 1; i < 3; i++ {
		if uint64(g[i].Base-g[i-1].Base) != sepBoth {
			t.Error("separation wrong")
		}
	}
	// sepBoth aliases in both cache sizes, sep16K only in 16KB.
	if sepBoth%0x4000 != 0 || sepBoth%0x10000 != 0 {
		t.Error("sepBoth must be a multiple of 64KB")
	}
	if sep16K%0x4000 != 0 || sep16K%0x10000 == 0 {
		t.Error("sep16K must be a multiple of 16KB but not 64KB")
	}
}

func TestBenchmarkPanicsOnBadPhases(t *testing.T) {
	b := &Benchmark{Name: "broken", Build: func() []Phase { return nil }}
	defer func() {
		if recover() == nil {
			t.Fatal("empty phase list should panic")
		}
	}()
	b.Stream(1)
}

func TestChainSetBounds(t *testing.T) {
	c := newChainSet(0)
	if c.n != 1 {
		t.Error("chain count should clamp to 1")
	}
	c = newChainSet(100)
	if c.n != 8 {
		t.Error("chain count should clamp to 8")
	}
	c = newChainSet(3)
	c.put(10)
	c.put(20)
	c.put(30)
	if c.get() != 10 {
		t.Error("chain rotation broken")
	}
}
