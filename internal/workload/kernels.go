package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/rng"
)

// chainSet provides a kernel with a bounded number of rotating dependence
// chains, modeling the instruction-level parallelism of a real inner loop:
// element i depends on element i-W, so W iterations can overlap in the
// out-of-order window, but a cache miss still stalls its chain. W=1 is a
// fully serial recurrence (pointer chasing); W=4 approximates a software-
// pipelined numeric loop.
type chainSet struct {
	regs [8]uint8
	n    int
	i    int
}

func newChainSet(n int) chainSet {
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return chainSet{n: n}
}

// get returns the chain register the next element depends on.
func (c *chainSet) get() uint8 { return c.regs[c.i] }

// put records the element's result register and advances to the next chain.
func (c *chainSet) put(v uint8) {
	c.regs[c.i] = v
	c.i = (c.i + 1) % c.n
}

// kernelBase embeds the common identity fields. bodies > 1 gives the
// kernel a large code footprint: each burst runs from a rotating copy of
// the loop body, bodySpacing bytes apart (see CodeFootprint).
type kernelBase struct {
	name   string
	code   mem.Addr
	bodies int
	bursts int
}

func (k kernelBase) Name() string       { return k.name }
func (k kernelBase) CodeBase() mem.Addr { return k.code }

// bodySpacing is the code size attributed to one loop body copy.
const bodySpacing mem.Addr = 512

// Bodies implements CodeFootprint.
func (k kernelBase) Bodies() (int, mem.Addr) {
	if k.bodies < 1 {
		return 1, bodySpacing
	}
	return k.bodies, bodySpacing
}

// bodyDwell is how many consecutive bursts run from the same body before
// the rotation advances: real loops iterate before control moves on, so
// the instruction stream has temporal locality at the body scale.
const bodyDwell = 4

// burstCode returns the code base for the next burst, rotating through the
// kernel's bodies with bodyDwell-burst runs, and advances the rotation.
func (k *kernelBase) burstCode() mem.Addr {
	n, sp := k.Bodies()
	b := (k.bursts / bodyDwell) % n
	k.bursts++
	return k.code + mem.Addr(b)*sp
}

// SetBodies configures the kernel's code footprint (chainable at suite
// construction time via the withBodies helper).
func (k *kernelBase) SetBodies(n int) { k.bodies = n }

// ---------------------------------------------------------------------------
// StridedSweep walks a region with a fixed stride, the canonical numeric
// inner loop (DAXPY-style). With a region much larger than the cache it
// produces a steady stream of capacity misses; with a cache-resident region
// it is all hits.
type StridedSweep struct {
	kernelBase
	Region    Region
	Stride    uint64 // bytes between consecutive elements
	PerBurst  int    // elements touched per burst
	Filler    int    // ALU ops per element
	FP        bool   // filler pipeline
	StoreBack bool   // also store to each element (read-modify-write)

	cursor uint64
	chains chainSet
}

// NewStridedSweep constructs the kernel; stride 0 defaults to 8 bytes.
func NewStridedSweep(name string, code mem.Addr, region Region, stride uint64, perBurst, filler int, fp, storeBack bool) *StridedSweep {
	if stride == 0 {
		stride = 8
	}
	if perBurst <= 0 {
		perBurst = 8
	}
	return &StridedSweep{
		kernelBase: kernelBase{name: name, code: code},
		Region:     region, Stride: stride, PerBurst: perBurst,
		Filler: filler, FP: fp, StoreBack: storeBack,
		chains: newChainSet(6),
	}
}

// Burst implements Kernel.
func (k *StridedSweep) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	for i := 0; i < k.PerBurst; i++ {
		addr := k.Region.Base + mem.Addr(k.cursor)
		k.cursor += k.Stride
		if k.cursor >= k.Region.Size {
			k.cursor = 0
		}
		// Element i depends on element i-4: a software-pipelined loop.
		v := e.Load(addr, k.chains.get())
		v = e.Filler(k.Filler, k.FP, v)
		if k.StoreBack {
			e.Store(addr, v)
		}
		k.chains.put(v)
		e.LoopBranch(i < k.PerBurst-1, v)
	}
}

// ---------------------------------------------------------------------------
// AliasPingPong alternates between N arrays whose bases map to the same
// cache sets, revisiting each line Reps times — the canonical conflict-miss
// generator. With two arrays it produces conflict near-misses that one more
// way of associativity would absorb; these are exactly the misses the MCT
// identifies and a victim cache converts to hits.
type AliasPingPong struct {
	kernelBase
	Arrays   []Region // bases chosen by the suite to alias in the target L1
	Span     uint64   // lines of each array touched before wrapping
	Reps     int      // times the array group is revisited per index
	PerBurst int      // indices advanced per burst
	Filler   int
	FP       bool
	Stores   bool // make the second array's access a store

	cursor uint64
	chains chainSet
}

// NewAliasPingPong constructs the kernel. Reps >= 2 is required for the
// revisits that turn the first-touch misses into conflict misses.
func NewAliasPingPong(name string, code mem.Addr, arrays []Region, span uint64, reps, perBurst, filler int, fp, stores bool) *AliasPingPong {
	if len(arrays) < 2 {
		panic(fmt.Sprintf("workload: %s: AliasPingPong needs at least 2 arrays", name))
	}
	if reps < 2 {
		reps = 2
	}
	if perBurst <= 0 {
		perBurst = 2
	}
	if span == 0 {
		span = 1
	}
	return &AliasPingPong{
		kernelBase: kernelBase{name: name, code: code},
		Arrays:     arrays, Span: span, Reps: reps, PerBurst: perBurst,
		Filler: filler, FP: fp, Stores: stores,
		chains: newChainSet(4),
	}
}

// Burst implements Kernel.
func (k *AliasPingPong) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	for b := 0; b < k.PerBurst; b++ {
		// Visit indices in a scrambled full-cycle order (97 is coprime to
		// every power-of-two-times-three span the suite uses): contended
		// lines are revisited just as before, but consecutively visited
		// indices are far apart, so a next-line prefetch triggered by a
		// conflict miss fetches a line that will not be wanted for a long
		// time — the wasted-prefetch behavior of real conflict misses.
		idx := (k.cursor * 97) % k.Span
		k.cursor++
		// The revisits of one index are serially dependent (they touch the
		// same data); indices overlap through the chain set.
		v := k.chains.get()
		for r := 0; r < k.Reps; r++ {
			for ai, a := range k.Arrays {
				addr := a.LineAddr(idx)
				if k.Stores && ai == 1 && r == k.Reps-1 {
					e.Store(addr, v)
				} else {
					v = e.Load(addr, v)
				}
				if k.Filler > 0 {
					v = e.Filler(k.Filler, k.FP, v)
				}
			}
		}
		k.chains.put(v)
		e.LoopBranch(b < k.PerBurst-1, v)
	}
}

// ---------------------------------------------------------------------------
// PointerChase follows a pseudo-random full-cycle permutation over the
// lines of a region, modeling linked-data traversal (li, vortex). Each hop
// depends on the previous load, serializing the chain, and for regions much
// larger than the cache every hop is a capacity miss with no exploitable
// pattern.
type PointerChase struct {
	kernelBase
	Region Region
	Hops   int // hops per burst
	Filler int
	FP     bool

	idx   uint64
	chain uint8
}

// NewPointerChase constructs the kernel; the region's line count must be a
// power of two so the mixing LCG has full period.
func NewPointerChase(name string, code mem.Addr, region Region, hops, filler int, fp bool) *PointerChase {
	n := region.LineCount()
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("workload: %s: PointerChase region must span a power-of-two line count, got %d", name, n))
	}
	if hops <= 0 {
		hops = 8
	}
	return &PointerChase{
		kernelBase: kernelBase{name: name, code: code},
		Region:     region, Hops: hops, Filler: filler, FP: fp,
	}
}

// Burst implements Kernel.
func (k *PointerChase) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	n := k.Region.LineCount()
	v := k.chain
	for h := 0; h < k.Hops; h++ {
		// Full-period LCG over [0, n): multiplier ≡ 1 (mod 4), odd increment.
		k.idx = (k.idx*1664525 + 1013904223) % n
		addr := k.Region.LineAddr(k.idx)
		v = e.Load(addr, v)   // next pointer depends on previous load
		v = e.Load(addr+8, v) // a field in the same node
		if k.Filler > 0 {
			v = e.Filler(k.Filler, k.FP, v)
		}
		e.LoopBranch(h < k.Hops-1, v)
	}
	k.chain = v
}

// ---------------------------------------------------------------------------
// HotZipf references lines of a region under a Zipf-skewed distribution,
// the classic model of interpreter heaps and symbol tables (gcc, li, perl):
// a hot head that stays resident and a long cold tail of capacity misses.
type HotZipf struct {
	kernelBase
	Region    Region
	Theta     float64
	PerBurst  int
	StoreFrac float64
	Filler    int
	FP        bool

	zipf *rng.Zipf // built lazily on first burst
}

// NewHotZipf constructs the kernel with skew theta in (0,1).
func NewHotZipf(name string, code mem.Addr, region Region, theta float64, perBurst int, storeFrac float64, filler int, fp bool) *HotZipf {
	if perBurst <= 0 {
		perBurst = 8
	}
	return &HotZipf{
		kernelBase: kernelBase{name: name, code: code},
		Region:     region, Theta: theta, PerBurst: perBurst,
		StoreFrac: storeFrac, Filler: filler, FP: fp,
	}
}

// Burst implements Kernel.
func (k *HotZipf) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	if k.zipf == nil {
		k.zipf = rng.NewZipf(k.Region.LineCount(), k.Theta)
	}
	var v uint8
	for i := 0; i < k.PerBurst; i++ {
		line := k.zipf.Sample(e.Rand())
		addr := k.Region.LineAddr(line) + mem.Addr(e.Rand().Uint64n(8)*8)
		if e.Rand().Bool(k.StoreFrac) {
			e.Store(addr, v)
		} else {
			v = e.Load(addr, v)
		}
		if k.Filler > 0 {
			v = e.Filler(k.Filler, k.FP, v)
		}
		e.DataBranch(0.7, v)
	}
}

// ---------------------------------------------------------------------------
// StackChurn models call-stack traffic: store-heavy pushes and load-heavy
// pops over a handful of lines with near-perfect locality. It supplies the
// high-hit-rate baseline traffic of the integer codes.
type StackChurn struct {
	kernelBase
	Region Region // small; a few KB
	Depth  uint64 // max frames
	Frame  uint64 // bytes per frame

	sp uint64
}

// NewStackChurn constructs the kernel.
func NewStackChurn(name string, code mem.Addr, region Region, depth, frame uint64) *StackChurn {
	if frame == 0 {
		frame = 64
	}
	if depth == 0 {
		depth = 8
	}
	if depth*frame > region.Size {
		depth = region.Size / frame
	}
	return &StackChurn{
		kernelBase: kernelBase{name: name, code: code},
		Region:     region, Depth: depth, Frame: frame,
	}
}

// Burst implements Kernel.
func (k *StackChurn) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	push := e.Rand().Bool(0.5)
	if k.sp == 0 {
		push = true
	}
	if k.sp >= k.Depth-1 {
		push = false
	}
	if push {
		k.sp++
	} else {
		k.sp--
	}
	base := k.Region.Base + mem.Addr(k.sp*k.Frame)
	var v uint8
	for w := uint64(0); w < k.Frame; w += 16 {
		if push {
			e.Store(base+mem.Addr(w), v)
		} else {
			v = e.Load(base+mem.Addr(w), v)
		}
	}
	v = e.Filler(3, false, v)
	e.DataBranch(0.6, v)
}

// ---------------------------------------------------------------------------
// SeqScan reads a large region front to back, touching two words in each
// line before moving on, then restarts — the prefetch-friendly streaming
// pattern (swim's field sweeps) with the short intra-line spatial burst
// real 64-byte-line traffic exhibits. Almost every miss is a capacity miss
// the next-line prefetcher covers, and a line diverted to a bypass buffer
// still serves the rest of its burst from there.
type SeqScan struct {
	kernelBase
	Region   Region
	PerBurst int
	Filler   int
	FP       bool
	Stores   bool // write every line instead of reading

	cursor uint64
	chains chainSet
}

// NewSeqScan constructs the kernel.
func NewSeqScan(name string, code mem.Addr, region Region, perBurst, filler int, fp, stores bool) *SeqScan {
	if perBurst <= 0 {
		perBurst = 4
	}
	return &SeqScan{
		kernelBase: kernelBase{name: name, code: code},
		Region:     region, PerBurst: perBurst, Filler: filler, FP: fp, Stores: stores,
		chains: newChainSet(6),
	}
}

// Burst implements Kernel.
func (k *SeqScan) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	for i := 0; i < k.PerBurst; i++ {
		addr := k.Region.LineAddr(k.cursor)
		k.cursor++
		v := k.chains.get()
		if k.Stores {
			e.Store(addr, v)
			v = e.Load(addr+16, v)
		} else {
			v = e.Load(addr, v)
			v = e.Load(addr+16, v)
		}
		v = e.Filler(k.Filler, k.FP, v)
		k.chains.put(v)
		e.LoopBranch(i < k.PerBurst-1, v)
	}
}

// ---------------------------------------------------------------------------
// GatherScatter performs uniformly random read-modify-write traffic over a
// mid-sized table — the compress hash-table pattern. Misses are capacity
// misses with no sequential structure, the worst case for a next-line
// prefetcher.
type GatherScatter struct {
	kernelBase
	Region   Region
	PerBurst int
	Filler   int

	chains chainSet
}

// NewGatherScatter constructs the kernel.
func NewGatherScatter(name string, code mem.Addr, region Region, perBurst, filler int) *GatherScatter {
	if perBurst <= 0 {
		perBurst = 4
	}
	return &GatherScatter{
		kernelBase: kernelBase{name: name, code: code},
		Region:     region, PerBurst: perBurst, Filler: filler,
		chains: newChainSet(3),
	}
}

// Burst implements Kernel.
func (k *GatherScatter) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	for i := 0; i < k.PerBurst; i++ {
		line := e.Rand().Uint64n(k.Region.LineCount())
		addr := k.Region.LineAddr(line)
		v := e.Load(addr, k.chains.get())
		v = e.Filler(k.Filler, false, v)
		e.Store(addr, v)
		k.chains.put(v)
		e.DataBranch(0.5, v)
	}
}

// ---------------------------------------------------------------------------
// SweepLoop cycles repeatedly over a region sized near twice the target
// cache. Classically these are pure capacity misses (the region exceeds the
// fully-associative capacity too), but with exactly two lines aliasing per
// set the MCT's one-deep eviction memory labels them conflict — the
// systematic misclassification that keeps the paper's capacity accuracy
// below 100%. Benchmarks include it in small doses to reproduce that error
// mode honestly.
type SweepLoop struct {
	kernelBase
	Region   Region
	PerBurst int
	Filler   int
	FP       bool

	cursor uint64
	chains chainSet
}

// NewSweepLoop constructs the kernel.
func NewSweepLoop(name string, code mem.Addr, region Region, perBurst, filler int, fp bool) *SweepLoop {
	if perBurst <= 0 {
		perBurst = 4
	}
	return &SweepLoop{
		kernelBase: kernelBase{name: name, code: code},
		Region:     region, PerBurst: perBurst, Filler: filler, FP: fp,
		chains: newChainSet(6),
	}
}

// Burst implements Kernel.
func (k *SweepLoop) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	for i := 0; i < k.PerBurst; i++ {
		addr := k.Region.LineAddr(k.cursor)
		k.cursor++
		v := e.Load(addr, k.chains.get())
		v = e.Filler(k.Filler, k.FP, v)
		k.chains.put(v)
		e.LoopBranch(i < k.PerBurst-1, v)
	}
}

// ---------------------------------------------------------------------------
// HotConflict is the canonical conflict-miss generator of the victim-cache
// literature: a small window of array-pair indices, spaced several lines
// apart, swept repeatedly so the same cache sets ping-pong continuously.
// After the first pass every miss in the window is a conflict near-miss —
// the MCT and the classic oracle agree — and the next-line prefetches such
// misses trigger fetch lines outside the window that are pure waste,
// reissued pass after pass. A victim buffer converts the whole window into
// short-latency hits. The window drifts every Dwell bursts so new sets
// warm up (first-pass misses correctly classify as capacity).
type HotConflict struct {
	kernelBase
	Arrays    []Region
	WindowIdx int    // indices per window
	IdxStride uint64 // lines between adjacent window indices
	Passes    int    // sweeps over the window per burst
	Dwell     int    // bursts before the window advances
	Filler    int
	FP        bool

	chains chainSet
	base   uint64
	bursts int
}

// NewHotConflict constructs the kernel.
func NewHotConflict(name string, code mem.Addr, arrays []Region, windowIdx int, idxStride uint64, passes, dwell, filler int, fp bool) *HotConflict {
	if len(arrays) < 2 {
		panic(fmt.Sprintf("workload: %s: HotConflict needs at least 2 arrays", name))
	}
	if windowIdx <= 0 {
		windowIdx = 8
	}
	if idxStride == 0 {
		idxStride = 5
	}
	if passes <= 0 {
		passes = 2
	}
	if dwell <= 0 {
		dwell = 8
	}
	return &HotConflict{
		kernelBase: kernelBase{name: name, code: code},
		Arrays:     arrays, WindowIdx: windowIdx, IdxStride: idxStride,
		Passes: passes, Dwell: dwell, Filler: filler, FP: fp,
		chains: newChainSet(2),
	}
}

// Burst implements Kernel.
func (k *HotConflict) Burst(e *Emitter) {
	e.beginBurst(k.burstCode())
	for p := 0; p < k.Passes; p++ {
		for w := 0; w < k.WindowIdx; w++ {
			idx := k.base + uint64(w)*k.IdxStride
			v := k.chains.get()
			for _, a := range k.Arrays {
				v = e.Load(a.LineAddr(idx), v)
				if k.Filler > 0 {
					v = e.Filler(k.Filler, k.FP, v)
				}
			}
			k.chains.put(v)
			e.LoopBranch(p < k.Passes-1 || w < k.WindowIdx-1, v)
		}
	}
	k.bursts++
	if k.bursts%k.Dwell == 0 {
		k.base += uint64(k.WindowIdx) * k.IdxStride
		if k.base >= k.Arrays[0].LineCount() {
			k.base = 0
		}
	}
}
