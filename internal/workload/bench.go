package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Phase is a weighted kernel within a benchmark: the scheduler picks each
// burst's kernel with probability proportional to Weight, so a benchmark's
// character is the weighted superposition of its kernels.
type Phase struct {
	Kernel Kernel
	Weight int
}

// Benchmark is a named synthetic program: a kernel mix plus descriptive
// metadata. Construct streams with Stream; a Benchmark itself is immutable
// and safe to share (kernels are instantiated fresh per stream).
type Benchmark struct {
	// Name is the SPEC95 benchmark the model stands in for.
	Name string
	// FP marks the floating-point half of the suite.
	FP bool
	// Description summarizes the access-pattern rationale.
	Description string
	// Build constructs the benchmark's kernels with fresh state. It is
	// called once per stream so concurrent streams never share cursors.
	Build func() []Phase
	// CodeBodies is the per-kernel code footprint in loop-body copies
	// (see CodeFootprint); 0/1 means a single tight loop body. Large
	// irregular codes (gcc, vortex) set tens of bodies so an instruction
	// cache sees realistic pressure.
	CodeBodies int
}

// Stream returns a fresh infinite instruction stream for the benchmark,
// deterministic in seed. Wrap with trace.NewLimit to bound it.
func (b *Benchmark) Stream(seed uint64) trace.Stream {
	phases := b.Build()
	if len(phases) == 0 {
		panic(fmt.Sprintf("workload: benchmark %s has no phases", b.Name))
	}
	total := 0
	for _, p := range phases {
		if p.Weight <= 0 {
			panic(fmt.Sprintf("workload: benchmark %s: phase %s has non-positive weight", b.Name, p.Kernel.Name()))
		}
		total += p.Weight
	}
	if b.CodeBodies > 1 {
		for _, p := range phases {
			if setter, ok := p.Kernel.(interface{ SetBodies(int) }); ok {
				setter.SetBodies(b.CodeBodies)
			}
		}
	}
	src := rng.New(seed ^ hashName(b.Name))
	return &synthStream{
		bench:       b,
		phases:      phases,
		totalWeight: total,
		em:          newEmitter(src),
	}
}

// phaseRun is how many consecutive bursts a scheduled kernel executes
// before the scheduler redraws. Real programs run in phases: while a
// miss-heavy loop executes, there is little unrelated work for the
// out-of-order window to hide its latency behind. Burst-granularity
// interleaving would overstate cross-kernel parallelism and make the
// machine implausibly latency-tolerant.
const phaseRun = 12

// synthStream refills an instruction buffer one kernel burst at a time,
// choosing the kernel by weighted random draw and keeping it scheduled for
// phaseRun bursts.
type synthStream struct {
	bench       *Benchmark
	phases      []Phase
	totalWeight int
	em          *Emitter
	pos         int

	current   *Phase
	burstLeft int
}

// Next implements trace.Stream. Synthetic streams never end.
func (s *synthStream) Next(out *trace.Instr) bool {
	for s.pos >= len(s.em.buf) {
		s.em.buf = s.em.buf[:0]
		s.pos = 0
		s.refill()
	}
	*out = s.em.buf[s.pos]
	s.pos++
	return true
}

func (s *synthStream) refill() {
	if s.current == nil || s.burstLeft <= 0 {
		pick := s.em.Rand().Intn(s.totalWeight)
		s.current = &s.phases[len(s.phases)-1]
		for i := range s.phases {
			pick -= s.phases[i].Weight
			if pick < 0 {
				s.current = &s.phases[i]
				break
			}
		}
		s.burstLeft = phaseRun
	}
	s.burstLeft--
	s.current.Kernel.Burst(s.em)
}

// hashName folds a benchmark name into seed material (FNV-1a) so two
// benchmarks given the same user seed still draw independent streams.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// DefaultSeed is the seed used by experiments unless overridden; fixing it
// repo-wide makes every number in EXPERIMENTS.md reproducible exactly.
const DefaultSeed uint64 = 19991116 // MICRO-32's opening date
