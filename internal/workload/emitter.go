// Package workload synthesizes deterministic instruction streams that stand
// in for the paper's SPEC95 suite.
//
// Each named benchmark (tomcatv, swim, gcc, ...) is composed from a small
// library of access-pattern kernels — strided sweeps, aliasing ping-pongs,
// pointer chases, Zipf-skewed hot sets, stack churn — with parameters tuned
// so that the paper's 16KB direct-mapped L1 sees the conflict/capacity miss
// mix the original workload exhibited. The substitution argument is spelled
// out in DESIGN.md: every result in the paper is a function of the miss
// stream's composition, which these generators control directly.
//
// Streams are pure functions of (benchmark, seed): no global state, no
// wall-clock, no math/rand.
package workload

import (
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Emitter is the instruction-construction context handed to kernels. It
// allocates destination registers round-robin, advances a per-burst program
// counter (each burst models one loop-body execution, so PCs repeat across
// bursts — giving PC-indexed predictors realistic behavior), and appends to
// the stream's refill buffer.
type Emitter struct {
	rng *rng.Source
	buf []trace.Instr

	pcBase mem.Addr // kernel's code region; burst PCs restart here
	pc     mem.Addr
	reg    uint8 // next destination register
}

const (
	firstAllocReg = 1  // RegZero is hardwired zero
	lastAllocReg  = 62 // leave one scratch register free
)

func newEmitter(src *rng.Source) *Emitter {
	return &Emitter{rng: src, reg: firstAllocReg}
}

// Rand returns the emitter's deterministic random source; kernels draw all
// randomness from it.
func (e *Emitter) Rand() *rng.Source { return e.rng }

// beginBurst resets the PC to the kernel's code base, modeling re-entry of
// the kernel's loop body.
func (e *Emitter) beginBurst(codeBase mem.Addr) {
	e.pcBase = codeBase
	e.pc = codeBase
}

func (e *Emitter) nextPC() mem.Addr {
	pc := e.pc
	e.pc += 4
	return pc
}

func (e *Emitter) allocReg() uint8 {
	r := e.reg
	e.reg++
	if e.reg > lastAllocReg {
		e.reg = firstAllocReg
	}
	return r
}

// emit appends one instruction.
func (e *Emitter) emit(in trace.Instr) {
	e.buf = append(e.buf, in)
}

// Load emits a load from addr depending on up to two source registers and
// returns the destination register holding the result.
func (e *Emitter) Load(addr mem.Addr, srcs ...uint8) uint8 {
	d := e.allocReg()
	in := trace.Instr{PC: e.nextPC(), Op: trace.Load, Dest: d, Addr: addr}
	setSrcs(&in, srcs)
	e.emit(in)
	return d
}

// Store emits a store to addr whose data depends on up to two registers.
func (e *Emitter) Store(addr mem.Addr, srcs ...uint8) {
	in := trace.Instr{PC: e.nextPC(), Op: trace.Store, Addr: addr}
	setSrcs(&in, srcs)
	e.emit(in)
}

// Int emits a one-cycle integer op and returns its destination register.
func (e *Emitter) Int(srcs ...uint8) uint8 {
	return e.alu(trace.IntOp, srcs)
}

// IntMul emits a multi-cycle integer multiply.
func (e *Emitter) IntMul(srcs ...uint8) uint8 {
	return e.alu(trace.IntMul, srcs)
}

// FP emits a pipelined floating-point op.
func (e *Emitter) FP(srcs ...uint8) uint8 {
	return e.alu(trace.FPOp, srcs)
}

// FPDiv emits a long-latency floating-point divide.
func (e *Emitter) FPDiv(srcs ...uint8) uint8 {
	return e.alu(trace.FPDiv, srcs)
}

func (e *Emitter) alu(op trace.OpClass, srcs []uint8) uint8 {
	d := e.allocReg()
	in := trace.Instr{PC: e.nextPC(), Op: op, Dest: d}
	setSrcs(&in, srcs)
	e.emit(in)
	return d
}

// LoopBranch emits the backward branch closing a loop body. taken should be
// true except on the final iteration; loop branches are highly predictable,
// like real loop-closing branches.
func (e *Emitter) LoopBranch(taken bool, srcs ...uint8) {
	in := trace.Instr{PC: e.nextPC(), Op: trace.Branch, Taken: taken}
	setSrcs(&in, srcs)
	e.emit(in)
}

// DataBranch emits a data-dependent branch taken with probability p,
// modeling the poorly-predictable control flow of irregular codes.
func (e *Emitter) DataBranch(p float64, srcs ...uint8) {
	in := trace.Instr{PC: e.nextPC(), Op: trace.Branch, Taken: e.rng.Bool(p)}
	setSrcs(&in, srcs)
	e.emit(in)
}

// Filler emits n dependence-chained ALU ops, fp selecting the FP or integer
// pipeline — the compute padding between memory references that sets each
// benchmark's memory intensity.
func (e *Emitter) Filler(n int, fp bool, feed uint8) uint8 {
	r := feed
	for i := 0; i < n; i++ {
		if fp {
			r = e.FP(r)
		} else {
			r = e.Int(r)
		}
	}
	return r
}

func setSrcs(in *trace.Instr, srcs []uint8) {
	if len(srcs) > 0 {
		in.Src1 = srcs[0]
	}
	if len(srcs) > 1 {
		in.Src2 = srcs[1]
	}
}

// Kernel is one access-pattern generator. Burst emits one unit of work
// (roughly one loop-body execution, tens of instructions); the scheduler
// interleaves bursts from a benchmark's kernels according to their weights.
type Kernel interface {
	// Name identifies the kernel in diagnostics.
	Name() string
	// CodeBase is the kernel's instruction-address region; bursts re-enter
	// it so PC-indexed predictors see stable addresses.
	CodeBase() mem.Addr
	// Burst appends one burst of instructions to the emitter.
	Burst(e *Emitter)
}

// CodeFootprint is implemented by kernels whose code spans multiple loop
// bodies (inlined copies, cold paths, helper functions). Each burst
// executes from one body, rotating deterministically, so the instruction
// stream exercises an instruction cache realistically: small numeric
// kernels stay resident while large irregular codes (a compiler's many
// passes) thrash. Kernels without the interface have a single body.
type CodeFootprint interface {
	// Bodies returns how many distinct code copies the kernel executes
	// from and the byte spacing between copies.
	Bodies() (n int, spacing mem.Addr)
}

// Region is a contiguous data address range a kernel works over.
type Region struct {
	Base mem.Addr
	Size uint64
}

// LineCount returns how many 64-byte lines the region spans.
func (r Region) LineCount() uint64 { return r.Size / 64 }

// LineAddr returns the byte address of the i-th line of the region
// (wrapping at the region end).
func (r Region) LineAddr(i uint64) mem.Addr {
	return r.Base + mem.Addr((i%r.LineCount())*64)
}
