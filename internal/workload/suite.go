package workload

import (
	"sort"

	"repro/internal/mem"
)

// The synthetic SPEC95 stand-ins. Parameters are tuned against the paper's
// default 16KB direct-mapped / 64-byte-line L1:
//
//   - alias separations that are multiples of 64KB collide in both the
//     16KB and 64KB configurations of Figure 1; separations that are
//     multiples of 16KB but not 64KB collide only in the 16KB caches;
//   - two-array ping-pongs are conflict near-misses (hit with one more
//     way), which the MCT identifies almost perfectly and a 2-way cache
//     absorbs entirely;
//   - three-array round-robins need two extra ways: the direct-mapped MCT
//     mislabels them (its eviction memory is one deep), reproducing the
//     paper's ~12% conflict-accuracy gap;
//   - sweep loops near twice the cache size are capacity misses the MCT
//     systematically calls conflict, reproducing the capacity-accuracy gap;
//   - every benchmark carries a heavily weighted resident kernel (stack,
//     globals, hot tables) supplying the ~90% hit traffic real programs
//     exhibit; the miss-pattern kernels ride on top of it.
//
// Tuning was validated against the classify package: the weights below put
// each benchmark's L1 miss rate, conflict share, and MCT accuracy in the
// bands the paper reports (tomcatv near 38% misses and conflict-heavy, the
// integer codes in low single digits, suite-average accuracy near 90%).

const (
	kb = 1 << 10
	mb = 1 << 20

	dataBase = 0x2000_0000 // benchmark data segment
	codeBase = 0x0040_0000 // benchmark code segment

	// sepBoth aliases in every Figure-1 configuration (multiple of 64KB);
	// sep16K aliases only in the 16KB caches (multiple of 16KB, not 64KB).
	sepBoth = 0x40000 // 256KB
	sep16K  = 0x44000 // 272KB
)

func reg(off, size uint64) Region {
	return Region{Base: mem.Addr(dataBase + off), Size: size}
}

func code(i int) mem.Addr { return mem.Addr(codeBase + i*0x10000) }

// aliasGroup returns n regions of the given span whose bases are sep bytes
// apart, starting at off.
func aliasGroup(off uint64, n int, span, sep uint64) []Region {
	rs := make([]Region, n)
	for i := range rs {
		rs[i] = reg(off+uint64(i)*sep, span)
	}
	return rs
}

// resident returns the standard hit-traffic kernel: a small array swept
// with high temporal locality, placed high in the data segment where it
// still shares cache sets with the miss kernels (as real stacks and
// globals do).
func resident(name string, c mem.Addr, off, size uint64, fp bool) Kernel {
	return NewStridedSweep(name, c, reg(off, size), 8, 8, 2, fp, false)
}

// suite is the full benchmark registry, built once at init.
var suite = map[string]*Benchmark{}

// carried lists the benchmarks carried into the Section 5 performance
// studies — those with an interesting conflict/capacity mix, per the paper.
var carried = []string{
	"tomcatv", "swim", "turb3d", "wave5", "applu", "mgrid",
	"gcc", "compress", "li", "vortex",
}

func register(b *Benchmark) { suite[b.Name] = b }

func init() {
	register(&Benchmark{
		Name: "tomcatv", CodeBodies: 4, FP: true,
		Description: "mesh-generation vectors aliasing pairwise in the L1; very high miss rate dominated by conflict near-misses, plus streaming field sweeps",
		Build: func() []Phase {
			return []Phase{
				{NewAliasPingPong("tv-pingpong", code(0), aliasGroup(0, 2, 192*kb, sepBoth), 3072, 6, 2, 1, true, false), 3},
				{NewHotConflict("tv-hotpair", code(1), aliasGroup(1*mb, 2, 128*kb, sep16K), 8, 5, 2, 8, 1, true), 3},
				{NewSeqScan("tv-scan", code(2), reg(4*mb, 2*mb), 4, 2, true, true), 2},
				{resident("tv-resident", code(3), 8*mb, 8*kb, true), 27},
			}
		},
	})

	register(&Benchmark{
		Name: "swim", CodeBodies: 4, FP: true,
		Description: "shallow-water stencil: long unit-stride sweeps over fields far larger than the L1; capacity-dominated with a trickle of conflicts",
		Build: func() []Phase {
			return []Phase{
				{NewSeqScan("sw-u", code(0), reg(0, 4*mb), 4, 3, true, false), 5},
				{NewSeqScan("sw-v", code(1), reg(8*mb, 4*mb), 4, 3, true, true), 3},
				{NewStridedSweep("sw-p", code(2), reg(16*mb, 2*mb), 64, 6, 2, true, true), 3},
				{NewAliasPingPong("sw-edge", code(3), aliasGroup(24*mb, 2, 64*kb, sepBoth), 1024, 3, 1, 2, true, false), 1},
				{NewSweepLoop("sw-halo", code(4), reg(30*mb, 36*kb), 4, 3, true), 1},
				{resident("sw-coef", code(5), 32*mb, 8*kb, true), 55},
			}
		},
	})

	register(&Benchmark{
		Name: "hydro2d", CodeBodies: 6, FP: true,
		Description: "hydrodynamics row sweeps; moderate capacity misses with mild aliasing between flux arrays",
		Build: func() []Phase {
			return []Phase{
				{NewStridedSweep("hy-row", code(0), reg(0, 1*mb), 64, 8, 3, true, false), 4},
				{NewStridedSweep("hy-col", code(1), reg(2*mb, 1*mb), 512, 8, 3, true, true), 2},
				{NewAliasPingPong("hy-flux", code(2), aliasGroup(4*mb, 2, 32*kb, sep16K), 512, 3, 2, 2, true, false), 2},
				{NewSweepLoop("hy-bound", code(3), reg(5*mb, 40*kb), 4, 3, true), 1},
				{resident("hy-resident", code(4), 6*mb, 8*kb, true), 80},
			}
		},
	})

	register(&Benchmark{
		Name: "mgrid", CodeBodies: 6, FP: true,
		Description: "multigrid relaxation: power-of-two strides across grid levels whose bases alias in both cache sizes",
		Build: func() []Phase {
			return []Phase{
				{NewStridedSweep("mg-fine", code(0), reg(0, 2*mb), 64, 8, 2, true, false), 4},
				{NewStridedSweep("mg-mid", code(1), reg(4*mb, 512*kb), 128, 8, 2, true, true), 2},
				{NewAliasPingPong("mg-levels", code(2), aliasGroup(6*mb, 2, 96*kb, sepBoth), 1536, 3, 2, 2, true, false), 2},
				{NewHotConflict("mg-pair", code(3), aliasGroup(8*mb, 2, 64*kb, sepBoth), 8, 5, 2, 8, 2, true), 2},
				{resident("mg-coarse", code(4), 10*mb, 8*kb, true), 110},
			}
		},
	})

	register(&Benchmark{
		Name: "applu", CodeBodies: 8, FP: true,
		Description: "LU factorization working set near twice the L1: cyclic sweeps whose capacity misses the MCT systematically mislabels, lowering capacity accuracy",
		Build: func() []Phase {
			return []Phase{
				{NewSweepLoop("ap-lu", code(0), reg(0, 36*kb), 6, 3, true), 4},
				{NewStridedSweep("ap-rhs", code(1), reg(1*mb, 1*mb), 64, 6, 3, true, true), 3},
				{NewHotConflict("ap-pivot", code(2), aliasGroup(4*mb, 2, 32*kb, sepBoth), 6, 5, 2, 8, 2, true), 2},
				{resident("ap-resident", code(3), 3*mb, 8*kb, true), 92},
			}
		},
	})

	register(&Benchmark{
		Name: "turb3d", CodeBodies: 6, FP: true,
		Description: "3D FFT turbulence: plane pairs ping-ponging in the L1 plus a third plane that needs two extra ways (partly invisible to the one-deep MCT) and streaming",
		Build: func() []Phase {
			return []Phase{
				{NewHotConflict("tb-hotpair", code(0), aliasGroup(6*mb, 2, 64*kb, sep16K), 8, 5, 2, 8, 1, true), 3},
				{NewAliasPingPong("tb-planes", code(1), aliasGroup(0, 3, 128*kb, sepBoth), 2048, 2, 2, 2, true, false), 1},
				{NewSeqScan("tb-stream", code(2), reg(2*mb, 2*mb), 4, 3, true, true), 3},
				{resident("tb-twiddle", code(3), 8*mb, 8*kb, true), 58},
			}
		},
	})

	register(&Benchmark{
		Name: "apsi", CodeBodies: 8, FP: true,
		Description: "mesoscale weather: large-stride field traversals (every access a new line) with a small hot parameter table",
		Build: func() []Phase {
			return []Phase{
				{NewStridedSweep("as-fields", code(0), reg(0, 4*mb), 256, 8, 3, true, false), 3},
				{NewStridedSweep("as-levels", code(1), reg(8*mb, 2*mb), 128, 8, 3, true, true), 2},
				{NewAliasPingPong("as-bc", code(2), aliasGroup(13*mb, 2, 32*kb, sepBoth), 512, 3, 1, 2, true, false), 1},
				{NewHotZipf("as-params", code(3), reg(12*mb, 32*kb), 0.8, 6, 0.1, 2, true), 5},
				{resident("as-resident", code(4), 14*mb, 8*kb, true), 70},
			}
		},
	})

	register(&Benchmark{
		Name: "wave5", CodeBodies: 6, FP: true,
		Description: "particle-in-cell: particle ping-pong between field arrays aliasing only in the 16KB caches, plus scattered particle updates",
		Build: func() []Phase {
			return []Phase{
				{NewAliasPingPong("wv-fields", code(0), aliasGroup(0, 2, 128*kb, sep16K), 2048, 6, 2, 1, true, false), 2},
				{NewHotConflict("wv-hotpair", code(4), aliasGroup(8*mb, 2, 64*kb, sep16K), 8, 5, 2, 8, 1, true), 2},
				{NewGatherScatter("wv-particles", code(1), reg(2*mb, 512*kb), 4, 2), 2},
				{NewSeqScan("wv-stream", code(2), reg(4*mb, 1*mb), 4, 2, true, false), 2},
				{resident("wv-resident", code(3), 6*mb, 8*kb, true), 62},
			}
		},
	})

	register(&Benchmark{
		Name: "compress", CodeBodies: 8, FP: false,
		Description: "LZW: uniformly random hash probes over a quarter-megabyte table (prefetch-hostile capacity misses) with a hot dictionary head",
		Build: func() []Phase {
			return []Phase{
				{NewGatherScatter("cp-hash", code(0), reg(0, 256*kb), 4, 3), 4},
				{NewHotZipf("cp-dict", code(1), reg(512*kb, 32*kb), 0.8, 6, 0.2, 2, false), 5},
				{NewStackChurn("cp-stack", code(2), reg(1*mb, 4*kb), 8, 128), 6},
				{NewSeqScan("cp-io", code(3), reg(2*mb, 1*mb), 4, 2, false, false), 1},
				{resident("cp-window", code(4), 3*mb, 8*kb, false), 50},
			}
		},
	})

	register(&Benchmark{
		Name: "gcc", CodeBodies: 32, FP: false,
		Description: "compiler: Zipf-skewed symbol tables, RTL pointer chasing, deep stack churn, and hash buckets aliasing in the 16KB L1",
		Build: func() []Phase {
			return []Phase{
				{NewHotZipf("gc-symtab", code(0), reg(0, 512*kb), 0.65, 6, 0.15, 2, false), 4},
				{NewPointerChase("gc-rtl", code(1), reg(1*mb, 128*kb), 6, 2, false), 2},
				{NewStackChurn("gc-stack", code(2), reg(2*mb, 8*kb), 16, 128), 8},
				{NewHotConflict("gc-buckets", code(3), aliasGroup(3*mb, 2, 16*kb, sep16K), 6, 5, 2, 8, 2, false), 2},
				{resident("gc-rtx", code(4), 4*mb, 8*kb, false), 92},
			}
		},
	})

	register(&Benchmark{
		Name: "go", CodeBodies: 24, FP: false,
		Description: "game tree search: small hot board state, modest pointer chasing, branch-heavy with excellent cache behavior",
		Build: func() []Phase {
			return []Phase{
				{NewHotZipf("go-board", code(0), reg(0, 256*kb), 0.75, 8, 0.2, 3, false), 4},
				{NewPointerChase("go-tree", code(1), reg(128*kb, 128*kb), 4, 3, false), 1},
				{NewStackChurn("go-stack", code(2), reg(256*kb, 8*kb), 24, 96), 8},
				{resident("go-patterns", code(3), 1*mb, 8*kb, false), 80},
			}
		},
	})

	register(&Benchmark{
		Name: "ijpeg", CodeBodies: 8, FP: false,
		Description: "image compression: streaming pixel scans and subsampled strides; capacity misses that prefetch well",
		Build: func() []Phase {
			return []Phase{
				{NewSeqScan("jp-pixels", code(0), reg(0, 1*mb), 4, 3, false, false), 4},
				{NewStridedSweep("jp-subsample", code(1), reg(2*mb, 1*mb), 192, 8, 2, false, false), 2},
				{NewHotZipf("jp-tables", code(2), reg(4*mb, 8*kb), 0.8, 6, 0.1, 3, false), 6},
				{resident("jp-quant", code(3), 5*mb, 8*kb, false), 70},
			}
		},
	})

	register(&Benchmark{
		Name: "li", CodeBodies: 16, FP: false,
		Description: "lisp interpreter: cons-cell chasing over a heap a few times the L1, deep recursion, resident globals",
		Build: func() []Phase {
			return []Phase{
				{NewPointerChase("li-heap", code(0), reg(0, 256*kb), 6, 2, false), 3},
				{NewStackChurn("li-stack", code(1), reg(128*kb, 16*kb), 32, 128), 8},
				{NewHotZipf("li-globals", code(2), reg(256*kb, 8*kb), 0.7, 6, 0.2, 2, false), 5},
				{NewHotConflict("li-gc", code(3), aliasGroup(512*kb, 2, 16*kb, sep16K), 6, 5, 2, 8, 2, false), 1},
				{resident("li-oblist", code(4), 1*mb, 8*kb, false), 85},
			}
		},
	})

	register(&Benchmark{
		Name: "m88ksim", CodeBodies: 12, FP: false,
		Description: "CPU simulator: hot architectural state tables with near-perfect locality; memory is rarely the bottleneck",
		Build: func() []Phase {
			return []Phase{
				{NewHotZipf("m8-state", code(0), reg(0, 512*kb), 0.85, 8, 0.25, 3, false), 3},
				{NewStridedSweep("m8-regs", code(1), reg(256*kb, 8*kb), 8, 8, 3, false, true), 8},
				{NewStackChurn("m8-stack", code(2), reg(512*kb, 4*kb), 8, 64), 6},
				{resident("m8-decode", code(3), 1*mb, 8*kb, false), 60},
			}
		},
	})

	register(&Benchmark{
		Name: "perl", CodeBodies: 32, FP: false,
		Description: "interpreter: skewed hash-table traffic with colliding buckets, pointer chasing, and stack churn",
		Build: func() []Phase {
			return []Phase{
				{NewHotZipf("pl-hash", code(0), reg(0, 256*kb), 0.7, 6, 0.2, 2, false), 3},
				{NewPointerChase("pl-ops", code(1), reg(512*kb, 64*kb), 5, 2, false), 1},
				{NewStackChurn("pl-stack", code(2), reg(1*mb, 8*kb), 16, 128), 8},
				{NewAliasPingPong("pl-buckets", code(3), aliasGroup(2*mb, 2, 16*kb, sep16K), 256, 4, 2, 1, false, false), 1},
				{resident("pl-sv", code(4), 3*mb, 8*kb, false), 65},
			}
		},
	})

	register(&Benchmark{
		Name: "vortex", CodeBodies: 24, FP: false,
		Description: "object database: pointer chasing over a large store, random record updates, store-heavy",
		Build: func() []Phase {
			return []Phase{
				{NewPointerChase("vx-objects", code(0), reg(0, 512*kb), 6, 2, false), 3},
				{NewGatherScatter("vx-records", code(1), reg(1*mb, 256*kb), 4, 2), 2},
				{NewStackChurn("vx-stack", code(2), reg(2*mb, 8*kb), 16, 128), 6},
				{NewHotConflict("vx-index", code(3), aliasGroup(3*mb, 2, 32*kb, sepBoth), 6, 5, 2, 8, 2, false), 1},
				{resident("vx-cache", code(4), 4*mb, 8*kb, false), 70},
			}
		},
	})
}

// Suite returns the full benchmark list, sorted by name — the population of
// Figures 1 and 2.
func Suite() []*Benchmark {
	out := make([]*Benchmark, 0, len(suite))
	for _, b := range suite {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Carried returns the benchmarks carried into the Section 5 performance
// studies, in the fixed order the experiments report them.
func Carried() []*Benchmark {
	out := make([]*Benchmark, 0, len(carried))
	for _, name := range carried {
		out = append(out, suite[name])
	}
	return out
}

// ByName looks up a benchmark.
func ByName(name string) (*Benchmark, bool) {
	b, ok := suite[name]
	return b, ok
}

// Names returns the sorted names of all benchmarks.
func Names() []string {
	out := make([]string, 0, len(suite))
	for n := range suite {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
