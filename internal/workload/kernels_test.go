package workload

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/trace"
)

// runBursts drives a kernel for n bursts and returns the emitted
// instructions.
func runBursts(k Kernel, n int, seed uint64) []trace.Instr {
	e := newEmitter(rng.New(seed))
	for i := 0; i < n; i++ {
		k.Burst(e)
	}
	return e.buf
}

func memAddrs(ins []trace.Instr) []mem.Addr {
	var out []mem.Addr
	for _, in := range ins {
		if in.Op.IsMem() {
			out = append(out, in.Addr)
		}
	}
	return out
}

func TestStridedSweepCoversRegionAndWraps(t *testing.T) {
	r := Region{Base: 0x1000, Size: 1024}
	k := NewStridedSweep("s", 0x100, r, 128, 4, 1, false, false)
	addrs := memAddrs(runBursts(k, 4, 1)) // 16 accesses, stride 128 over 1KB: wraps twice
	for i, a := range addrs {
		if a < r.Base || a >= r.Base+mem.Addr(r.Size) {
			t.Fatalf("access %d at %#x outside region", i, a)
		}
	}
	if addrs[0] != addrs[8] {
		t.Error("sweep should wrap to the region base")
	}
}

func TestStridedSweepStoreBack(t *testing.T) {
	k := NewStridedSweep("s", 0x100, Region{Base: 0x1000, Size: 4096}, 64, 4, 1, false, true)
	ins := runBursts(k, 2, 1)
	loads, stores := 0, 0
	for _, in := range ins {
		switch in.Op {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		}
	}
	if loads != stores || stores == 0 {
		t.Errorf("read-modify-write should pair loads and stores: %d/%d", loads, stores)
	}
}

func TestAliasPingPongAliasesAndRevisits(t *testing.T) {
	arrays := aliasGroup(0, 2, 64*kb, sepBoth)
	k := NewAliasPingPong("a", 0x100, arrays, 512, 3, 2, 0, false, false)
	addrs := memAddrs(runBursts(k, 1, 1))
	// One burst: 2 indices x 3 reps x 2 arrays = 12 accesses.
	if len(addrs) != 12 {
		t.Fatalf("accesses = %d", len(addrs))
	}
	geom := mem.MustGeometry(64, 256)
	// Per index, all accesses alias to one set; reps revisit the same pair.
	for i := 0; i < 12; i += 6 {
		set := geom.Set(addrs[i])
		for j := i; j < i+6; j++ {
			if geom.Set(addrs[j]) != set {
				t.Fatalf("access %d not aliased to its index's set", j)
			}
		}
		if addrs[i] != addrs[i+2] || addrs[i+1] != addrs[i+3] {
			t.Error("reps should revisit the same line pair")
		}
		if geom.Tag(addrs[i]) == geom.Tag(addrs[i+1]) {
			t.Error("arrays must differ in tag")
		}
	}
}

func TestAliasPingPongScrambledOrder(t *testing.T) {
	// Consecutive indices must not be adjacent lines (the wasted-prefetch
	// property): idx advances by 97 mod span.
	arrays := aliasGroup(0, 2, 64*kb, sepBoth)
	k := NewAliasPingPong("a", 0x100, arrays, 512, 2, 1, 0, false, false)
	a1 := memAddrs(runBursts(k, 1, 1))[0]
	a2 := memAddrs(runBursts(k, 1, 1))[0]
	if a2 == a1+64 {
		t.Error("scrambled index order should not visit adjacent lines consecutively")
	}
}

func TestPointerChaseFullCycleAndSerial(t *testing.T) {
	r := Region{Base: 0x10000, Size: 64 * 64} // 64 lines
	k := NewPointerChase("p", 0x100, r, 8, 0, false)
	ins := runBursts(k, 16, 1) // 128 hops over a 64-line cycle
	seen := map[mem.Addr]bool{}
	var prevDest uint8
	first := true
	for _, in := range ins {
		if in.Op != trace.Load {
			continue
		}
		seen[in.Addr&^0x3f] = true
		// Serial chain: the first load of each line pair depends on the
		// previous load's destination.
		if !first && in.Addr%128 == 0 {
			_ = prevDest
		}
		prevDest = in.Dest
		first = false
	}
	if len(seen) < 32 {
		t.Errorf("chase visited only %d of 64 lines", len(seen))
	}
}

func TestHotZipfSkew(t *testing.T) {
	r := Region{Base: 0x20000, Size: 1024 * 64}
	k := NewHotZipf("z", 0x100, r, 0.8, 8, 0.1, 0, false)
	addrs := memAddrs(runBursts(k, 200, 7))
	counts := map[mem.Addr]int{}
	for _, a := range addrs {
		counts[a&^0x3f]++
	}
	// The hottest line should be dramatically hotter than the median.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < len(addrs)/20 {
		t.Errorf("no hot head: max line count %d of %d accesses", max, len(addrs))
	}
}

func TestStackChurnLocality(t *testing.T) {
	r := Region{Base: 0x30000, Size: 8 * kb}
	k := NewStackChurn("st", 0x100, r, 16, 128)
	addrs := memAddrs(runBursts(k, 100, 3))
	distinct := map[mem.Addr]bool{}
	for _, a := range addrs {
		distinct[a&^0x3f] = true
		if a < r.Base || a >= r.Base+mem.Addr(r.Size) {
			t.Fatalf("stack access %#x out of region", a)
		}
	}
	if len(distinct) > 40 {
		t.Errorf("stack churn touched %d lines; should be tightly local", len(distinct))
	}
}

func TestSeqScanIntraLineBurst(t *testing.T) {
	r := Region{Base: 0x40000, Size: 64 * kb}
	k := NewSeqScan("sc", 0x100, r, 4, 0, false, false)
	addrs := memAddrs(runBursts(k, 2, 1))
	// Two accesses per line: pairs share a line, consecutive pairs advance
	// one line.
	if len(addrs)%2 != 0 {
		t.Fatalf("odd access count %d", len(addrs))
	}
	g := mem.MustGeometry(64, 256)
	for i := 0; i < len(addrs); i += 2 {
		if !g.SameLine(addrs[i], addrs[i+1]) {
			t.Fatalf("pair %d not in one line", i/2)
		}
		if i > 0 && g.Line(addrs[i]) != g.Line(addrs[i-2])+1 {
			t.Fatalf("scan not sequential at pair %d", i/2)
		}
	}
}

func TestHotConflictWindowPingPong(t *testing.T) {
	arrays := aliasGroup(0, 2, 64*kb, sep16K)
	k := NewHotConflict("h", 0x100, arrays, 8, 5, 2, 8, 0, false)
	addrs := memAddrs(runBursts(k, 1, 1))
	// One burst: 2 passes x 8 indices x 2 arrays = 32 accesses; the two
	// passes repeat the same addresses.
	if len(addrs) != 32 {
		t.Fatalf("accesses = %d", len(addrs))
	}
	for i := 0; i < 16; i++ {
		if addrs[i] != addrs[i+16] {
			t.Fatalf("second pass should revisit the window (access %d)", i)
		}
	}
	// Window indices are spaced 5 lines apart: adjacent lines never touched.
	g := mem.MustGeometry(64, 256)
	if g.Line(addrs[2]) == g.Line(addrs[0])+1 {
		t.Error("window stride should skip adjacent lines")
	}
}

func TestHotConflictWindowDrifts(t *testing.T) {
	arrays := aliasGroup(0, 2, 64*kb, sep16K)
	k := NewHotConflict("h", 0x100, arrays, 8, 5, 2, 4, 0, false)
	first := memAddrs(runBursts(k, 1, 1))[0]
	// After Dwell bursts the window must advance.
	var later mem.Addr
	for i := 0; i < 4; i++ {
		later = memAddrs(runBursts(k, 1, 1))[0]
	}
	if later == first {
		t.Error("window never drifted")
	}
}

func TestBodiesRotateWithDwell(t *testing.T) {
	k := NewSeqScan("sc", 0x100000, Region{Base: 0x40000, Size: 64 * kb}, 4, 0, false, false)
	k.SetBodies(4)
	var pcs []mem.Addr
	for i := 0; i < bodyDwell*4+1; i++ {
		e := newEmitter(rng.New(1))
		k.Burst(e)
		pcs = append(pcs, e.buf[0].PC)
	}
	// Within a dwell run the body is stable; across runs it advances.
	for i := 1; i < bodyDwell; i++ {
		if pcs[i] != pcs[0] {
			t.Fatalf("body changed mid-dwell at burst %d", i)
		}
	}
	if pcs[bodyDwell] == pcs[0] {
		t.Error("body never rotated after dwell")
	}
	if pcs[bodyDwell]-pcs[0] != bodySpacing {
		t.Errorf("body spacing = %d, want %d", pcs[bodyDwell]-pcs[0], bodySpacing)
	}
	// Rotation wraps back to body 0.
	found := false
	for _, pc := range pcs[bodyDwell:] {
		if pc == pcs[0] {
			found = true
		}
	}
	if !found {
		t.Error("rotation never wrapped")
	}
}

func TestGatherScatterPairsLoadStore(t *testing.T) {
	r := Region{Base: 0x50000, Size: 256 * kb}
	k := NewGatherScatter("g", 0x100, r, 4, 1)
	ins := runBursts(k, 5, 9)
	for i, in := range ins {
		if in.Op == trace.Store {
			// The store's address must match a recent load (read-modify-write).
			foundLoad := false
			for j := i - 1; j >= 0 && j >= i-4; j-- {
				if ins[j].Op == trace.Load && ins[j].Addr == in.Addr {
					foundLoad = true
					break
				}
			}
			if !foundLoad {
				t.Fatalf("store %d at %#x without a preceding load", i, in.Addr)
			}
		}
	}
}
