// Package assoc implements the paper's Section-5.6 "highly associative
// caches" application: using miss classification inside the line
// replacement algorithm of a set-associative cache.
//
// The policy biases eviction *against* lines that entered on capacity
// misses: a striding access (capacity miss followed by a short burst) is
// pushed out of the set quickly once cold, while lines that entered on
// conflict misses — demonstrated members of the set's contended hot group
// — are kept. This is the use Stone attributes to Pomerene's shadow
// directory; the paper adds the conflict bit that carries the verdict for
// the line's lifetime.
//
// The implementation is an assist.System over an N-way cache with the
// biased replacement, so it drops into the same experiments and timing
// model as every other architecture in the repository.
package assoc

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
)

// way is one frame of a set.
type way struct {
	line     mem.LineAddr
	valid    bool
	dirty    bool
	conflict bool
	stamp    uint64
}

// System is an N-way set-associative cache whose replacement consults the
// conflict bits. UseMCT false gives plain LRU — the comparison baseline.
type System struct {
	useMCT bool
	assoc  int
	mct    *core.MCT
	geom   mem.Geometry
	sets   [][]way
	clock  uint64

	stats assist.Stats
}

// New builds the cache. The configuration's associativity should be 4 or
// more for the policy to have room to express a bias (2-way works but the
// pseudo-associative package covers that regime).
func New(cfg cache.Config, tagBits int, useMCT bool) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := mem.NewGeometry(cfg.LineSize, cfg.Sets())
	if err != nil {
		return nil, err
	}
	mct, err := core.New(core.Config{Sets: cfg.Sets(), TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	sets := make([][]way, cfg.Sets())
	for i := range sets {
		sets[i] = make([]way, cfg.Assoc)
	}
	return &System{
		useMCT: useMCT,
		assoc:  cfg.Assoc,
		mct:    mct,
		geom:   geom,
		sets:   sets,
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg cache.Config, tagBits int, useMCT bool) *System {
	s, err := New(cfg, tagBits, useMCT)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements assist.System.
func (s *System) Name() string {
	if s.useMCT {
		return fmt.Sprintf("%dway-mct", s.assoc)
	}
	return fmt.Sprintf("%dway-lru", s.assoc)
}

// MCT exposes the classification table.
func (s *System) MCT() *core.MCT { return s.mct }

// Access implements assist.System.
func (s *System) Access(acc mem.Access) assist.Outcome {
	isStore := acc.Type == mem.Store
	s.stats.Accesses++
	line := s.geom.Line(acc.Addr)
	set := s.sets[s.geom.SetOfLine(line)]
	s.clock++

	for i := range set {
		if set[i].valid && set[i].line == line {
			s.stats.L1Hits++
			set[i].stamp = s.clock
			if isStore {
				set[i].dirty = true
			}
			return assist.Outcome{L1Hit: true}
		}
	}

	setIdx := s.geom.SetOfLine(line)
	tag := s.geom.TagOfLine(line)
	class := s.mct.ClassifyMiss(setIdx, tag)
	s.stats.Misses++
	if class == core.Conflict {
		s.stats.ConflictMisses++
	} else {
		s.stats.CapacityMisses++
	}

	victim := s.chooseVictim(set)
	wb := false
	if set[victim].valid {
		s.mct.RecordEviction(setIdx, s.geom.TagOfLine(set[victim].line))
		wb = set[victim].dirty
	}
	set[victim] = way{
		line:     line,
		valid:    true,
		dirty:    isStore,
		conflict: class == core.Conflict,
		stamp:    s.clock,
	}
	return assist.Outcome{Class: class, CacheFill: true, Writeback: wb}
}

// chooseVictim picks the way to evict: an invalid frame if any; otherwise
// under the MCT policy the LRU among capacity-entered lines (bias against
// striding data), falling back to plain LRU when every line in the set
// entered on a conflict miss.
func (s *System) chooseVictim(set []way) int {
	victim := -1
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	if s.useMCT {
		for i := range set {
			if set[i].conflict {
				continue
			}
			if victim < 0 || set[i].stamp < set[victim].stamp {
				victim = i
			}
		}
		if victim >= 0 {
			return victim
		}
		// Every line is conflict-marked: fall back to LRU and spend the
		// survivors' reprieve so the set cannot lock up permanently.
		for i := range set {
			set[i].conflict = false
		}
	}
	for i := range set {
		if victim < 0 || set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	return victim
}

// Contains implements assist.System.
func (s *System) Contains(addr mem.Addr) (inL1, inBuffer bool) {
	line := s.geom.Line(addr)
	for _, w := range s.sets[s.geom.SetOfLine(line)] {
		if w.valid && w.line == line {
			return true, false
		}
	}
	return false, false
}

// PrefetchArrived implements assist.System; this cache never prefetches.
func (s *System) PrefetchArrived(mem.LineAddr) bool { return false }

// Stats implements assist.System.
func (s *System) Stats() assist.Stats { return s.stats }
