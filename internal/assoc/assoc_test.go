package assoc

import (
	"testing"

	"repro/internal/assist"
	"repro/internal/cache"
	"repro/internal/mem"
)

func fourWay() cache.Config {
	return cache.Config{Name: "t", Size: 16 * 1024, LineSize: 64, Assoc: 4}
}

func load(a mem.Addr) mem.Access { return mem.Access{Addr: a, Type: mem.Load} }

func TestNames(t *testing.T) {
	if MustNew(fourWay(), 0, false).Name() != "4way-lru" {
		t.Error("lru name wrong")
	}
	if MustNew(fourWay(), 0, true).Name() != "4way-mct" {
		t.Error("mct name wrong")
	}
}

func TestBasicHitMiss(t *testing.T) {
	s := MustNew(fourWay(), 0, false)
	if !s.Access(load(0x1000)).Miss() {
		t.Fatal("cold access should miss")
	}
	if out := s.Access(load(0x1000)); !out.L1Hit {
		t.Fatal("warm access should hit")
	}
	if in, _ := s.Contains(0x1000); !in {
		t.Error("Contains wrong")
	}
}

func TestLRUFallback(t *testing.T) {
	// Without MCT bias, the cache behaves as plain LRU: fill 4 ways,
	// touch three, a fifth alias evicts the untouched one.
	s := MustNew(fourWay(), 0, false)
	stride := mem.Addr(0x1000) // 4KB: set span of a 4-way 16KB cache
	lines := []mem.Addr{0x0, stride, 2 * stride, 3 * stride}
	for _, a := range lines {
		s.Access(load(a))
	}
	s.Access(load(lines[0]))
	s.Access(load(lines[2]))
	s.Access(load(lines[3]))
	s.Access(load(4 * stride)) // evicts lines[1]
	if in, _ := s.Contains(lines[1]); in {
		t.Error("LRU line should have been evicted")
	}
	for _, a := range []mem.Addr{lines[0], lines[2], lines[3]} {
		if in, _ := s.Contains(a); !in {
			t.Errorf("line %#x should have survived", a)
		}
	}
}

func TestBiasEvictsCapacityLinesFirst(t *testing.T) {
	s := MustNew(fourWay(), 0, true)
	stride := mem.Addr(0x1000)
	// Build a set where one line carries a conflict bit: A is evicted and
	// re-fetched (MCT match -> conflict).
	a := mem.Addr(0x0)
	fill := []mem.Addr{a, stride, 2 * stride, 3 * stride}
	for _, x := range fill {
		s.Access(load(x))
	}
	s.Access(load(4 * stride)) // evicts a (LRU)
	s.Access(load(a))          // conflict re-fetch: a's bit set; evicts stride (LRU)
	// Now the set holds {a(bit), 2s, 3s, 4s}. Make a the LRU by touching
	// the others, then bring a new line: plain LRU would evict a; the
	// bias must evict the LRU capacity line instead.
	s.Access(load(2 * stride))
	s.Access(load(3 * stride))
	s.Access(load(4 * stride))
	s.Access(load(5 * stride))
	if in, _ := s.Contains(a); !in {
		t.Error("conflict-marked line was evicted despite the bias")
	}
}

func TestBiasFallsBackWhenAllConflict(t *testing.T) {
	// A set whose lines all carry conflict bits must still be evictable
	// (the bits are cleared and LRU applies).
	s := MustNew(fourWay(), 0, true)
	stride := mem.Addr(0x1000)
	group := []mem.Addr{0, stride, 2 * stride, 3 * stride, 4 * stride}
	// Round-robin 5 lines through 4 ways until all carry bits.
	for i := 0; i < 40; i++ {
		s.Access(load(group[i%len(group)]))
	}
	// Still functioning: the most recent 4 of the group are present.
	n := 0
	for _, a := range group {
		if in, _ := s.Contains(a); in {
			n++
		}
	}
	if n != 4 {
		t.Errorf("set holds %d of the group, want 4", n)
	}
}

func TestBiasProtectsHotGroupAgainstStream(t *testing.T) {
	// The paper's scenario: a contended group with conflict bits vs a
	// stream striding through the set. The bias should hold the group and
	// sacrifice the stream, beating LRU's miss count.
	// A hot pair that fits the set, plus three streaming interlopers per
	// round. The third interloper forces an eviction among {hot, stream}
	// and LRU picks a hot line (touched at round start, so oldest); the
	// re-missed hot line classifies conflict, earns its bit, and the bias
	// then sacrifices a stream line instead — saving the partner.
	run := func(useMCT bool) uint64 {
		s := MustNew(fourWay(), 0, useMCT)
		stride := mem.Addr(0x1000)
		hot := []mem.Addr{0, stride}
		var misses uint64
		for i := 0; i < 400; i++ {
			for _, a := range hot {
				if s.Access(load(a)).Miss() {
					misses++
				}
			}
			for k := 0; k < 3; k++ {
				s.Access(load(mem.Addr(0x100000) + mem.Addr(i*3+k)*stride))
			}
		}
		return misses
	}
	lru, mct := run(false), run(true)
	if mct >= lru {
		t.Errorf("bias should cut hot-group misses: lru=%d mct=%d", lru, mct)
	}
}

func TestWritebacks(t *testing.T) {
	s := MustNew(fourWay(), 0, false)
	stride := mem.Addr(0x1000)
	s.Access(mem.Access{Addr: 0, Type: mem.Store})
	for i := 1; i <= 4; i++ {
		s.Access(load(mem.Addr(i) * stride))
	}
	// The dirty line was evicted somewhere in there.
	st := s.Stats()
	if st.Misses != 5 {
		t.Errorf("misses = %d", st.Misses)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(cache.Config{Size: 3}, 0, true); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := New(fourWay(), 99, true); err == nil {
		t.Error("bad tag bits accepted")
	}
}

var _ assist.System = (*System)(nil)
