// Package repro's root benchmarks regenerate every table and figure of the
// paper at test scale, reporting each artifact's headline number as a
// custom benchmark metric, plus ablation benches for the design decisions
// DESIGN.md calls out. Full-scale regeneration is cmd/paperbench; these
// benches exist so `go test -bench=.` exercises the entire reproduction
// pipeline and prints the metrics that matter.
//
// Metric conventions: rates and accuracies are reported in percent
// (suffix _pct), speedups as ratios (suffix _x).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/amb"
	"repro/internal/assist"
	"repro/internal/exclude"
	"repro/internal/experiments"
	"repro/internal/hier"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchParams is the per-iteration scale: small enough that one iteration
// of the heaviest figure stays in single-digit seconds.
func benchParams() experiments.Params {
	return experiments.Params{MemAccesses: 60_000, Instructions: 60_000}
}

// BenchmarkFigure1 reproduces Figure 1: MCT classification accuracy per
// cache configuration (suite means reported; paper: 88/86% on 16KB DM).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Figure1(benchParams()))
		b.ReportMetric(100*r.MeanConflictAcc["16KB-DM"], "conflict_acc_16KB_DM_pct")
		b.ReportMetric(100*r.MeanCapacityAcc["16KB-DM"], "capacity_acc_16KB_DM_pct")
		b.ReportMetric(100*r.MeanOverallAcc["64KB-DM"], "overall_acc_64KB_DM_pct")
	}
}

// BenchmarkFigure2 reproduces Figure 2: accuracy vs stored tag bits
// (paper: 8-12 bits ≈ full tags; 1 bit halves capacity accuracy). It
// doubles as the tag-width ablation of DESIGN.md decision 1.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Figure2(benchParams()))
		if one, ok := r.PointAt(1); ok {
			b.ReportMetric(100*one.CapacityAcc, "capacity_acc_1bit_pct")
		}
		if eight, ok := r.PointAt(8); ok {
			b.ReportMetric(100*eight.OverallAcc, "overall_acc_8bit_pct")
		}
		if full, ok := r.PointAt(experiments.TagBitsFull); ok {
			b.ReportMetric(100*full.OverallAcc, "overall_acc_fulltag_pct")
		}
	}
}

// BenchmarkFigure3 reproduces Figure 3: victim-cache policies (paper: the
// combined filter gains ~3% over the traditional victim cache).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Figure3(benchParams()))
		b.ReportMetric(r.MeanSpeedup(1, 0), "traditional_speedup_x")
		b.ReportMetric(r.MeanSpeedup(2, 0), "filter_swaps_speedup_x")
		b.ReportMetric(r.MeanSpeedup(4, 0), "filter_both_speedup_x")
		b.ReportMetric(r.CombinedOverTraditional(), "combined_over_traditional_x")
	}
}

// BenchmarkTable1 reproduces Table 1: victim hit rates and swap/fill
// traffic (paper: fills 6.6->2.6, swaps 1.7->0.1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Figure3(benchParams())).Table1()
		b.ReportMetric(rows[1].FillPct, "traditional_fills_pct")
		b.ReportMetric(rows[3].FillPct, "filtered_fills_pct")
		b.ReportMetric(rows[1].SwapPct, "traditional_swaps_pct")
		b.ReportMetric(rows[2].SwapPct, "filtered_swaps_pct")
		b.ReportMetric(rows[1].TotalHR-rows[3].TotalHR, "fill_filter_hr_cost_pp")
	}
}

// BenchmarkFigure4 reproduces Figure 4: next-line prefetch filtering
// (paper: ~25% prefetch-accuracy gain, little speedup change).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Figure4(benchParams()))
		b.ReportMetric(100*r.Accuracy(1), "unfiltered_accuracy_pct")
		b.ReportMetric(100*r.Accuracy(5), "orfilter_accuracy_pct")
		b.ReportMetric(100*r.AccuracyGain(), "accuracy_gain_pct")
		b.ReportMetric(r.MeanSpeedup(1, 0), "unfiltered_speedup_x")
		b.ReportMetric(r.MeanSpeedup(5, 0), "orfilter_speedup_x")
	}
}

// BenchmarkFigure5 reproduces Figure 5: cache exclusion (paper: the simple
// capacity filter beats the Johnson-Hwu MAT on hit rate and speedup).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Figure5(benchParams()))
		b.ReportMetric(100*r.MeanTotalHitRate(1), "mat_total_hr_pct")
		b.ReportMetric(100*r.MeanTotalHitRate(4), "capacity_total_hr_pct")
		b.ReportMetric(r.MeanSpeedup(1, 0), "mat_speedup_x")
		b.ReportMetric(r.MeanSpeedup(4, 0), "capacity_speedup_x")
	}
}

// BenchmarkPseudoAssoc reproduces the Section-5.4 numbers (paper: MCT
// policy +1.5% over the base pseudo-associative cache, within 0.9% of a
// true 2-way cache, miss rate 10.22%->9.83%).
func BenchmarkPseudoAssoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.PseudoAssoc(benchParams()))
		base, mct := r.MissRates()
		b.ReportMetric(r.MCTOverBase(), "mct_over_base_x")
		b.ReportMetric(r.MCTVsTwoWay(), "mct_vs_2way_x")
		b.ReportMetric(100*base, "base_missrate_pct")
		b.ReportMetric(100*mct, "mct_missrate_pct")
	}
}

// BenchmarkFigure6 reproduces Figure 6: the Adaptive Miss Buffer (paper:
// the best combination roughly doubles the best single policy's gain).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Figure6(benchParams()))
		_, s := r.BestSingleGain()
		_, c := r.BestComboGain()
		b.ReportMetric(s, "best_single_speedup_x")
		b.ReportMetric(c, "best_combo_speedup_x")
		b.ReportMetric((c-1)/maxF(s-1, 1e-9), "gain_ratio_x")
		b.ReportMetric(100*r.MissRateReduction(), "missrate_reduction_pct")
	}
}

// BenchmarkFigure7 reproduces Figure 7: hit-rate components per AMB policy
// (reported for the winning VictPref configuration).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := must(experiments.Figure6(benchParams())).Figure7()
		for _, row := range rows {
			if row.System == "VictPref" {
				b.ReportMetric(row.DCacheHR, "victpref_dcache_pct")
				b.ReportMetric(row.VictimHR, "victpref_victim_pct")
				b.ReportMetric(row.PrefetchHR, "victpref_prefetch_pct")
				b.ReportMetric(row.MissRate, "victpref_miss_pct")
			}
		}
	}
}

// --- Ablation benches (DESIGN.md Section 5) -------------------------------

// BenchmarkAblationMCTSeeding isolates DESIGN.md decision 4: capacity
// exclusion with and without seeding the MCT for bypassed lines. Without
// seeding no bypassed line can ever classify conflict, so ever more misses
// divert to the bypass buffer and the cache starves.
func BenchmarkAblationMCTSeeding(b *testing.B) {
	bench, _ := workload.ByName("tomcatv")
	opt := sim.Options{Instructions: 60_000}
	for i := 0; i < b.N; i++ {
		seeded := sim.Run(bench, exclude.MustNew(sim.L1Config(), 0, exclude.DefaultEntries, exclude.ModeCapacity), opt)
		ablated := exclude.MustNew(sim.L1Config(), 0, exclude.DefaultEntries, exclude.ModeCapacity)
		ablated.DisableSeeding()
		unseeded := sim.Run(bench, ablated, opt)
		b.ReportMetric(seeded.IPC()/unseeded.IPC(), "seeding_speedup_x")
		b.ReportMetric(100*seeded.Sys.TotalHitRate(), "seeded_hr_pct")
		b.ReportMetric(100*unseeded.Sys.TotalHitRate(), "unseeded_hr_pct")
	}
}

// BenchmarkAblationMSHRs isolates DESIGN.md decision 6: the non-blocking
// depth. The paper's 16 MSHRs vs a nearly blocking cache (1) and an
// unconstrained one (64).
func BenchmarkAblationMSHRs(b *testing.B) {
	bench, _ := workload.ByName("swim")
	for i := 0; i < b.N; i++ {
		ipc := map[int]float64{}
		for _, mshrs := range []int{1, 4, 16, 64} {
			cfg := hier.DefaultConfig()
			cfg.MSHRs = mshrs
			r := sim.Run(bench, assist.MustNewBaseline(sim.L1Config(), 0),
				sim.Options{Instructions: 60_000, Hier: cfg})
			ipc[mshrs] = r.IPC()
		}
		b.ReportMetric(ipc[16]/ipc[1], "mshr16_over_1_x")
		b.ReportMetric(ipc[64]/ipc[16], "mshr64_over_16_x")
	}
}

// BenchmarkAblationBufferSize isolates the paper's buffer-size choice: the
// AMB's best combination at 4, 8, 16, and 32 entries (the paper shows the
// 8->16 step changing which combination wins).
func BenchmarkAblationBufferSize(b *testing.B) {
	bench, _ := workload.ByName("turb3d")
	opt := sim.Options{Instructions: 60_000}
	for i := 0; i < b.N; i++ {
		base := sim.Run(bench, assist.MustNewBaseline(sim.L1Config(), 0), opt)
		for _, entries := range []int{4, 8, 16, 32} {
			r := sim.Run(bench, mustAMBVictPref(entries), opt)
			b.ReportMetric(r.IPC()/base.IPC(), benchName("victpref_", entries, "_x"))
		}
	}
}

// BenchmarkRawSimulationThroughput measures the simulator itself:
// instructions simulated per second through the full CPU+hierarchy stack.
func BenchmarkRawSimulationThroughput(b *testing.B) {
	bench, _ := workload.ByName("gcc")
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		r := sim.Run(bench, assist.MustNewBaseline(sim.L1Config(), 0), sim.Options{Instructions: 200_000})
		instrs += r.CPU.Instructions
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// must unwraps an experiment's (result, error) pair; the bench harness
// installs no fault injection, so the error path is unreachable.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func benchName(prefix string, n int, suffix string) string {
	return fmt.Sprintf("%s%d%s", prefix, n, suffix)
}

func mustAMBVictPref(entries int) assist.System {
	return amb.MustNew(sim.L1Config(), 0, entries, amb.VictPref)
}

// --- Extension benches (paper Section 5.6, built out in this repo) --------

// BenchmarkReplacement measures the Sec-5.6 associative-replacement
// application: MCT-biased eviction over LRU at 4 and 8 ways.
func BenchmarkReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Replacement(benchParams()))
		b.ReportMetric(r.MeanSpeedup(1, 0), "mct_over_lru_4way_x")
		b.ReportMetric(r.MeanSpeedup(3, 2), "mct_over_lru_8way_x")
	}
}

// BenchmarkRemap measures the Sec-5.6 page-recoloring application:
// conflict-counted remapping vs all-miss counting.
func BenchmarkRemap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.Remap(benchParams()))
		ra, rc, ma, mc := r.RemapEfficiency()
		b.ReportMetric(float64(ra), "remaps_allmiss")
		b.ReportMetric(float64(rc), "remaps_conflict")
		b.ReportMetric(100*ma, "missrate_allmiss_pct")
		b.ReportMetric(100*mc, "missrate_conflict_pct")
	}
}

// BenchmarkMCTDepth measures the eviction-history-depth extension the
// paper names but does not evaluate: conflict accuracy rises with depth
// while capacity accuracy falls to false matches.
func BenchmarkMCTDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.MCTDepth(benchParams()))
		if d1, ok := r.PointAt(1); ok {
			b.ReportMetric(100*d1.OverallAcc, "overall_depth1_pct")
		}
		if d2, ok := r.PointAt(2); ok {
			b.ReportMetric(100*d2.ConflictAcc, "conflict_depth2_pct")
			b.ReportMetric(100*d2.CapacityAcc, "capacity_depth2_pct")
		}
	}
}

// BenchmarkSMT measures the Sec-5.6 multithreading claim with timing: the
// AMB's gain on a 2-thread shared cache vs on solo runs.
func BenchmarkSMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.SMTStudy(benchParams()))
		b.ReportMetric(r.PairGain(), "amb_gain_2thread_x")
		b.ReportMetric(r.SingleGain, "amb_gain_solo_x")
		b.ReportMetric(100*r.MeanPairConflictShare(), "conflict_share_2t_pct")
	}
}

// BenchmarkICache measures the instruction-cache extension: bare-I cost
// and the I-side victim buffer's recovery.
func BenchmarkICache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.ICacheStudy(benchParams()))
		b.ReportMetric(r.ICacheCost(), "bare_over_perfect_x")
		b.ReportMetric(r.VictimGain(), "victim_over_bare_x")
	}
}

// BenchmarkConfigSweep measures the configuration-grid generalization of
// Figure 1: worst-case accuracy over sizes x associativities.
func BenchmarkConfigSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.ConfigSweep(benchParams()))
		b.ReportMetric(100*r.MinOverallAcc(), "worst_overall_acc_pct")
		if c, ok := r.CellAt(16, 1); ok {
			b.ReportMetric(100*c.ConflictShare, "conflict_share_16KB_DM_pct")
		}
		if c, ok := r.CellAt(16, 4); ok {
			b.ReportMetric(100*c.ConflictShare, "conflict_share_16KB_4way_pct")
		}
	}
}

// BenchmarkCoSchedule measures the Sec-5.6 SMT co-scheduling application:
// the spread between the best and worst pair's cross-conflict rate (the
// signal a scheduler would act on).
func BenchmarkCoSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := must(experiments.CoSchedule(benchParams()))
		if n := len(r.Pairs); n > 0 {
			b.ReportMetric(1000*r.Pairs[0].CrossConflictRate, "best_pair_cross_per_1k")
			b.ReportMetric(1000*r.Pairs[n-1].CrossConflictRate, "worst_pair_cross_per_1k")
		}
	}
}
