# Build/test entry points. `make ci` is the gate PRs must keep green:
# vet plus the full test suite under the race detector (the experiment
# fan-outs all run through internal/runner's worker pool, so -race
# exercises real parallelism even on CI runners with few cores).

GO ?= go

.PHONY: build vet test race ci fuzz clean-cache

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: vet race

# Short fuzz passes over the binary trace decoder; CI runs the seed
# corpus via `make test`, this target digs deeper locally.
fuzz:
	$(GO) test -fuzz FuzzReadTrace -fuzztime 30s ./internal/trace
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/trace

# Drop all memoized experiment results (results/cache is also safely
# deletable by hand; entries are invalidated automatically when the code
# version or parameters change).
clean-cache:
	rm -rf results/cache
