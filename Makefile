# Build/test entry points. `make ci` is the gate PRs must keep green:
# vet plus the full test suite under the race detector (the experiment
# fan-outs all run through internal/runner's worker pool, so -race
# exercises real parallelism even on CI runners with few cores).

GO ?= go

.PHONY: build vet test race ci bench bench-smoke batch-smoke chaos-smoke serve-smoke obs-smoke geom-smoke crash-smoke chaosnet-smoke cluster-smoke mrc-smoke bench-cluster bench-mrc vulncheck fuzz clean-cache

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: vet race bench-smoke batch-smoke chaos-smoke serve-smoke obs-smoke geom-smoke crash-smoke chaosnet-smoke cluster-smoke mrc-smoke vulncheck

# Full hot-path benchmark sweep: the Go benchmarks for each package plus
# the paperbench -bench report (BENCH_pr2.json). Use this for recorded
# numbers; bench-smoke is the fast CI variant.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/cache ./internal/classify
	$(GO) run ./cmd/paperbench -bench

# CI smoke: compile and execute every benchmark for one iteration so a
# benchmark that panics or allocates unboundedly fails the gate without
# paying full measurement time (the allocation *numbers* are pinned by
# the AllocsPerRun regression tests under `make race`).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Batch-kernel smoke: the scalar-vs-batch differential property tests
# under the race detector, then the tool pipeline end to end — generate a
# legacy (v1) trace, convert it to the fixed-stride v2 format, check the
# conversion is byte-identical to generating v2 directly, classify both
# wire versions through the mmap-backed batch kernel, and require the two
# classifications to agree line for line (the leading line names the input
# file and is stripped before diffing).
batch-smoke:
	$(GO) test -race -count=1 -run 'TestClassifyBatchMatchesScalar|TestClassifyBatchAcrossWireFormats|TestClassifyUploadStreamsBeforeBodyComplete' ./internal/sim ./internal/service
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run -race ./cmd/tracegen -bench swim -n 20000 -seed 7 -format v1 -o $$tmp/swim.v1.mctr && \
	$(GO) run -race ./cmd/tracegen -convert $$tmp/swim.v1.mctr -o $$tmp/swim.v2.mctr && \
	$(GO) run -race ./cmd/tracegen -bench swim -n 20000 -seed 7 -format v2 -o $$tmp/swim.direct.mctr && \
	cmp $$tmp/swim.v2.mctr $$tmp/swim.direct.mctr && \
	$(GO) run -race ./cmd/mctsim -trace $$tmp/swim.v1.mctr | tail -n +2 > $$tmp/v1.out && \
	$(GO) run -race ./cmd/mctsim -trace $$tmp/swim.v2.mctr | tail -n +2 > $$tmp/v2.out && \
	diff $$tmp/v1.out $$tmp/v2.out && \
	echo "batch-smoke: v1/v2 classifications identical"

# Chaos smoke: the fault-tolerance acceptance tests (injected transient
# faults converge to byte-identical output; hangs are cut by -task-timeout;
# kill + -resume recomputes only unfinished cells) under the race detector.
# `make race` already runs these once; this target re-runs them -count=1
# as a focused gate so a cached pass never masks a supervision regression.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos|TestKillAndResume|TestPartialFailureExitPolicy' ./cmd/paperbench ./internal/faultinject

# Service smoke: boot mctd on an ephemeral port, hold 500 classify
# requests in flight against a 512-slot admission gate, verify the
# overflow bounces with 429 while memory stays bounded, run mctload
# against the live daemon, then SIGTERM and assert a clean drain with
# zero leaked goroutines — all under the race detector. `make race`
# already runs this once; the focused -count=1 re-run keeps a cached
# pass from masking a regression.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke|TestMctloadEndToEnd' -timeout 300s ./cmd/mctd ./cmd/mctload

# Observability smoke: boot mctd, drive exactly 200 classify requests
# through the load generator, scrape /metrics?format=prometheus, and
# require (a) zero unparseable exposition lines under the strict parser,
# (b) the server-side classify-latency histogram _count to equal the
# client-side request count, (c) every metric name to pass the naming
# convention (the vet-style gate lives in TestMetricNamingConvention).
# The double-boot regression test pins the expvar republication fix.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmoke|TestMctdRepublishesMetricsOnReboot|TestMetricNamingConvention|TestPrometheusExposition' -timeout 300s ./cmd/mctd ./internal/service

# Geometry smoke: the index-scheme gate under the race detector. The
# modulo fingerprint test pins the pluggable-geometry refactor to the
# pre-refactor goldens (classification verdicts and end-to-end timing,
# byte for byte); the cache geometry tests pin the skewed/random row
# hashes (dispersion, seed determinism, exact eviction addresses); the
# scalar-vs-batch differential covers all three schemes via
# diffGeometries. `make race` runs these once; the focused -count=1
# re-run keeps a cached pass from masking a regression.
geom-smoke:
	$(GO) test -race -count=1 -run 'TestModuloGeometryFingerprintsMatchSeed|TestClassifyBatchMatchesScalar' ./internal/sim
	$(GO) test -race -count=1 -run 'TestIndexScheme|TestConfigValidateRejectsUnknownScheme|TestModuloRowsMatchGeometry|TestSkewed|TestRandom|TestEvictionAddressExactUnderSkew|TestFillMakesHitAllSchemes|TestLoadMissAccounting|TestCacheAccessSteadyStateAllocs' ./internal/cache

# Crash smoke: the kill -9 durability gate. Boots mctd as a real
# subprocess, SIGKILLs it mid-sweep (a hang injected at one cell makes
# the kill point deterministic), reboots on the same data dirs, and
# requires the journaled job to finish with exactly one recomputed cell
# — then proves the recovered sweep output is byte-identical to a
# clean-room run. Runs under -race because recovery replays the journal
# concurrently with new admissions.
crash-smoke:
	$(GO) test -race -count=1 -run 'TestCrashRecoverySIGKILL' -timeout 300s ./cmd/mctd

# Chaos-network smoke: the end-to-end resilience gate. Boots mctd behind
# the chaos listener (5% connection resets, injected latency), drives
# 200 requests through the resilient client with retries enabled, and
# requires 100% goodput with zero duplicate server-side computation
# (cache_misses unchanged after a serial warmup — idempotency keys and
# the memo cache absorb every retry). Distinct from chaos-smoke, which
# covers task-level fault injection inside one process; this one covers
# faults on the wire.
chaosnet-smoke:
	$(GO) test -race -count=1 -run 'TestChaosnetConvergence' -timeout 300s ./cmd/mctd

# Cluster smoke: the distributed-execution gate. Boots a 3-node
# in-process fleet (real TCP listeners, per-node caches, static peer
# list) with one peer's listener injecting deterministic connection
# resets, runs a 200-cell seeded sweep through the coordinator, and
# requires: the job completes, the fleet computed every cell exactly
# once (cache-miss accounting sums to the cell count — the resilient
# peer client plus per-node cell singleflight absorb the resets without
# recomputation), and the NDJSON is byte-identical to a single-node
# run. The companion fleet tests (steal rescue, peer ejection,
# cross-node cache-fill race) ride along. All under the race detector.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestClusterChaosSmoke|TestFleetSweepByteIdenticalNoDuplicates|TestFleetCacheFillRaceConverges|TestFleetStealRescuesStraggler|TestFleetEjectionComputesLocally|TestClusterHeaderContractsAgree' -timeout 600s ./internal/service

# MRC smoke: the miss-ratio-curve profiling gate. Boots mctd, uploads a
# generated v2 trace to /v1/mrc and runs a spec request, and requires a
# monotone non-increasing curve, an MCT split that accounts for every
# miss (conflict+capacity+compulsory == misses <= accesses), and
# byte-identical cold/warm responses on both paths. The SHARDS
# differential tests (sampled vs exact stack distances, rate adaptation,
# the zero-alloc observe pin) and the tenant-quota/header-validation
# suite ride along, all under the race detector.
mrc-smoke:
	$(GO) test -race -count=1 -run 'TestMRCSmoke|TestProfilerMatchesExactReference|TestSampledErrorBounds|TestCurveMonotone|TestRateAdaptation|TestObserveBatchAllocs|TestMRC|TestTenant' -timeout 300s ./cmd/mctd ./internal/mrc ./internal/service

# Cluster scaling benchmark: 3-node fleet vs single node on a 24-cell
# sweep with a 60ms injected per-cell occupancy (the one-core proxy for
# I/O-bound cell time; see the TestClusterScalingBench comment for the
# methodology). Writes BENCH_pr9.json at the repo root. Not part of ci —
# it measures, it doesn't gate.
bench-cluster:
	MCT_BENCH_CLUSTER=1 MCT_BENCH_CLUSTER_OUT=$(CURDIR)/BENCH_pr9.json \
		$(GO) test -count=1 -run TestClusterScalingBench -v ./internal/service

# MRC profiler throughput: sampled (rate 0.01) and exact observe paths
# over a 1M-reference swim trace, written to BENCH_pr10.json at the repo
# root. Not part of ci — it measures, it doesn't gate.
bench-mrc:
	MCT_BENCH_MRC=1 MCT_BENCH_MRC_OUT=$(CURDIR)/BENCH_pr10.json \
		$(GO) test -count=1 -run TestMRCThroughputBench -v ./internal/mrc

# Known-vulnerability scan, best effort: runs when govulncheck is on PATH
# and never fails the build on environments without it (the container this
# repo grows in has no network to install tools).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vulncheck: findings above (non-fatal)"; \
	else \
		echo "vulncheck: govulncheck not installed; skipping"; \
	fi

# Short fuzz passes over the binary trace decoder; CI runs the seed
# corpus via `make test`, this target digs deeper locally.
fuzz:
	$(GO) test -fuzz FuzzReadTrace -fuzztime 30s ./internal/trace
	$(GO) test -fuzz 'FuzzRoundTrip$$' -fuzztime 30s ./internal/trace
	$(GO) test -fuzz FuzzBatchRoundTrip -fuzztime 30s ./internal/trace

# Drop all memoized experiment results (results/cache is also safely
# deletable by hand; entries are invalidated automatically when the code
# version or parameters change).
clean-cache:
	rm -rf results/cache
