// Co-scheduling: the Section-5.6 multithreading application end to end.
// Threads sharing one data cache inflict conflict misses on each other
// that neither thread can avoid alone; the Miss Classification Table
// attributes them, a scheduler ranks job pairs by cross-thread conflict
// production, and an SMT timing run shows the ranking predicting real
// throughput differences.
//
//	go run ./examples/coschedule
package main

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/cpu"
	"repro/internal/hier"
	"repro/internal/mt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	names := []string{"go", "li", "swim", "tomcatv"}
	benches := make([]*workload.Benchmark, len(names))
	for i, n := range names {
		benches[i], _ = workload.ByName(n)
	}

	// Step 1: the MCT-based interference matrix (functional, fast).
	cfg := mt.DefaultConfig()
	cfg.AccessesPerThread = 100_000
	pairs, err := mt.CoScheduleMatrix(benches, cfg)
	if err != nil {
		panic(err)
	}
	t := stats.NewTable("cross-thread conflict matrix (shared 16KB DM L1)",
		"pair", "cross-conflicts/1k", "combined miss %")
	for _, p := range pairs {
		t.AddRow(p.A+"+"+p.B,
			fmt.Sprintf("%.2f", 1000*p.CrossConflictRate),
			fmt.Sprintf("%.2f", 100*p.CombinedMissRate))
	}
	fmt.Println(t)

	// Step 2: validate the ranking with the SMT timing model — run the
	// best and worst pairs on the 2-thread core and compare combined
	// throughput against the sum of each job's solo rate share.
	best, worst := pairs[0], pairs[len(pairs)-1]
	fmt.Printf("scheduler picks %s+%s (least interference), avoids %s+%s\n\n",
		best.A, best.B, worst.A, worst.B)

	for _, p := range []mt.PairScore{best, worst} {
		ipc, eff := runSMT(p.A, p.B)
		fmt.Printf("%-16s combined IPC %.3f  (%.0f%% of the jobs' solo throughput)\n",
			p.A+"+"+p.B, ipc, 100*eff)
	}
	fmt.Println("\nThe pair the conflict matrix flags as hostile loses measurably more of")
	fmt.Println("its solo throughput to the shared cache — the feedback a conflict-aware")
	fmt.Println("SMT scheduler needs, from a table that costs ~1.4KB of hardware.")
}

// runSMT co-runs two benchmarks on the 2-thread core and returns combined
// IPC plus efficiency vs the sum of halved solo IPCs.
func runSMT(a, b string) (float64, float64) {
	const perThread = 100_000
	ba, _ := workload.ByName(a)
	bb, _ := workload.ByName(b)

	sys := assist.MustNewBaseline(sim.L1Config(), 0)
	h := hier.MustNew(hier.DefaultConfig(), sys)
	core := cpu.MustNewSMT(cpu.DefaultConfig(), h, 2)
	ms := core.Run([]trace.Stream{ba.Stream(1), bb.Stream(2)}, perThread)
	combined := (float64(ms[0].Instructions) + float64(ms[1].Instructions)) / float64(ms[0].Cycles)

	solo := 0.0
	for i, bench := range []*workload.Benchmark{ba, bb} {
		r := sim.Run(bench, assist.MustNewBaseline(sim.L1Config(), 0),
			sim.Options{Instructions: perThread, Seed: uint64(i + 1)})
		solo += r.IPC()
	}
	return combined, combined / solo
}
