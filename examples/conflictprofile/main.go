// Conflict profiling: use the Miss Classification Table as a measurement
// tool rather than a hardware optimization. The program replays a workload
// through an instrumented cache, builds a per-set conflict heat map, and
// reports which data regions fight over which sets — the software-visible
// diagnosis that page-remapping systems (the paper's Section 5.6 "runtime
// conflict avoidance") would act on.
//
//	go run ./examples/conflictprofile [-bench gcc]
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	benchName := flag.String("bench", "gcc", "benchmark to profile")
	accesses := flag.Uint64("accesses", 400_000, "memory accesses to replay")
	flag.Parse()

	bench, ok := workload.ByName(*benchName)
	if !ok {
		fmt.Println("unknown benchmark; see `go run ./cmd/mctsim -list`")
		return
	}

	cfg := sim.L1Config()
	l1 := cache.MustNew(cfg)
	cc := core.MustAttach(l1, 0)
	geom := l1.Geometry()

	conflictsPerSet := make([]uint64, cfg.Sets())
	missesPerSet := make([]uint64, cfg.Sets())
	// Conflicting page pairs: for every conflict miss, remember (page of
	// missing line, page of evicted line) — these are remap candidates.
	type pagePair struct{ a, b uint64 }
	pairs := map[pagePair]uint64{}

	s := trace.NewMemOnly(bench.Stream(workload.DefaultSeed))
	var in trace.Instr
	for n := uint64(0); n < *accesses && s.Next(&in); n++ {
		hit, ev := cc.Access(in.Addr, in.Op == trace.Store)
		if hit {
			continue
		}
		set := geom.Set(in.Addr)
		missesPerSet[set]++
		if ev.Class == core.Conflict {
			conflictsPerSet[set]++
			if ev.Eviction.Occurred {
				pg := uint64(in.Addr) >> 13 // 8KB pages
				evpg := (uint64(ev.Eviction.Line) << 6) >> 13
				if pg != evpg {
					p := pagePair{pg, evpg}
					if evpg < pg {
						p = pagePair{evpg, pg}
					}
					pairs[p]++
				}
			}
		}
	}

	st := cc.Table().Stats()
	fmt.Printf("%s: %d misses, %.1f%% classified conflict\n\n",
		bench.Name, st.Misses(), 100*st.ConflictFraction())

	// Hottest conflict sets.
	type setHeat struct {
		set       int
		conflicts uint64
	}
	heat := make([]setHeat, 0, cfg.Sets())
	for i, c := range conflictsPerSet {
		if c > 0 {
			heat = append(heat, setHeat{i, c})
		}
	}
	sort.Slice(heat, func(i, j int) bool { return heat[i].conflicts > heat[j].conflicts })
	fmt.Println("hottest conflict sets (set: conflict misses / total misses):")
	for i := 0; i < len(heat) && i < 8; i++ {
		h := heat[i]
		fmt.Printf("  set %3d: %6d / %6d\n", h.set, h.conflicts, missesPerSet[h.set])
	}

	// Top conflicting page pairs.
	type pairCount struct {
		p pagePair
		n uint64
	}
	pcs := make([]pairCount, 0, len(pairs))
	for p, n := range pairs {
		pcs = append(pcs, pairCount{p, n})
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i].n > pcs[j].n })
	fmt.Println("\ntop conflicting 8KB page pairs (remap candidates):")
	for i := 0; i < len(pcs) && i < 8; i++ {
		fmt.Printf("  pages %#x <-> %#x: %d conflict evictions\n",
			pcs[i].p.a<<13, pcs[i].p.b<<13, pcs[i].n)
	}
	fmt.Println("\nA cache-miss-lookaside-style OS would recolor one page of each hot")
	fmt.Println("pair; counting only conflict misses (not capacity) avoids pointless")
	fmt.Println("remaps — the paper's Section 5.6 proposal.")
}
