// Quickstart: classify the misses of a small access pattern with a Miss
// Classification Table and check the verdicts against the classic
// (compulsory/capacity/conflict) oracle.
//
//	go run ./examples/quickstart
//
// The program builds the paper's 16KB direct-mapped L1, attaches an MCT,
// and replays two canonical patterns: a conflict ping-pong (two addresses
// 16KB apart fighting over one set) and a capacity sweep (a region twice
// the cache size). It prints the classification of every miss in the first
// few iterations, then aggregate accuracy.
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/mem"
)

func main() {
	cfg := cache.Config{Name: "L1D", Size: 16 * 1024, LineSize: 64, Assoc: 1}
	run, err := classify.NewRun(cfg, 0) // full tags
	if err != nil {
		panic(err)
	}

	fmt.Println("-- conflict ping-pong: A and B are 16KB apart (same set, different tag)")
	a, b := mem.Addr(0x10000), mem.Addr(0x14000)
	for i := 0; i < 3; i++ {
		for _, addr := range []mem.Addr{a, b} {
			before := run.CC.Table().Stats()
			hit, ev := run.CC.Access(addr, false)
			kind := run.Oracle.Observe(addr, hit)
			if !hit {
				run.Acc.Record(kind, ev.Class)
				fmt.Printf("  iter %d: access %#x  MISS  mct=%-8s oracle=%-10s\n",
					i, uint64(addr), ev.Class, kind)
			} else {
				fmt.Printf("  iter %d: access %#x  hit\n", i, uint64(addr))
			}
			_ = before
		}
	}

	fmt.Println("-- capacity sweep: 32KB region cycled through a 16KB cache")
	for pass := 0; pass < 2; pass++ {
		misses := map[core.Class]int{}
		for i := 0; i < 512; i++ {
			addr := mem.Addr(0x100000 + i*64)
			hit, ev := run.CC.Access(addr, false)
			kind := run.Oracle.Observe(addr, hit)
			if !hit {
				run.Acc.Record(kind, ev.Class)
				misses[ev.Class]++
			}
		}
		fmt.Printf("  pass %d: %d misses classified conflict, %d capacity\n",
			pass, misses[core.Conflict], misses[core.Capacity])
	}
	fmt.Println("   (a two-lines-per-set sweep is the MCT's known blind spot:")
	fmt.Println("    the oracle calls these capacity, the MCT sees a ping-pong)")

	acc := run.Acc
	fmt.Printf("\noverall: %d misses | conflict accuracy %.1f%% | capacity accuracy %.1f%% | agreement %.1f%%\n",
		acc.Misses(), 100*acc.ConflictAccuracy(), 100*acc.CapacityAccuracy(), 100*acc.OverallAccuracy())

	mct := run.CC.Table()
	fmt.Printf("MCT cost: %d sets x (tag+valid) = %d bits total at 10-bit tags\n",
		mct.Config().Sets, core.Config{Sets: mct.Config().Sets, TagBits: 10}.StorageBits(0))
}
