// AMB demo: the Section-5.5 punchline as a runnable program. One small
// buffer, three personalities — victim cache for conflict misses, prefetch
// buffer and bypass buffer for capacity misses — and the combination beats
// every single-purpose configuration on a mixed workload.
//
//	go run ./examples/ambdemo
package main

import (
	"fmt"

	"repro/internal/amb"
	"repro/internal/assist"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	opt := sim.Options{Instructions: 300_000}
	cfg := sim.L1Config()

	// turb3d mixes a hot conflict pair with streaming sweeps — both miss
	// types in quantity, which is exactly the AMB's habitat.
	bench, _ := workload.ByName("turb3d")
	base := sim.Run(bench, assist.MustNewBaseline(cfg, 0), opt)
	fmt.Printf("workload %s: baseline IPC %.3f, miss rate %.1f%% (%.0f%% of misses are conflicts)\n\n",
		bench.Name, base.IPC(), 100*base.Sys.MissRate(),
		100*float64(base.Sys.ConflictMisses)/float64(base.Sys.Misses))

	t := stats.NewTable("adaptive miss buffer configurations (8 entries)",
		"combo", "speedup", "D$ %", "victim %", "prefetch %", "bypass %", "miss %")
	for _, combo := range amb.Combos {
		r := sim.Run(bench, amb.MustNew(cfg, 0, assist.DefaultEntries, combo), opt)
		s := r.Sys
		acc := float64(s.Accesses)
		t.AddRow(combo.Name(),
			fmt.Sprintf("%.3f", r.IPC()/base.IPC()),
			fmt.Sprintf("%.1f", 100*float64(s.L1Hits)/acc),
			fmt.Sprintf("%.1f", 100*float64(s.BufferHitsByOrigin[assist.OriginVictim])/acc),
			fmt.Sprintf("%.1f", 100*float64(s.BufferHitsByOrigin[assist.OriginPrefetch])/acc),
			fmt.Sprintf("%.1f", 100*float64(s.BufferHitsByOrigin[assist.OriginBypass])/acc),
			fmt.Sprintf("%.1f", 100*s.MissRate()))
	}
	fmt.Println(t)

	fmt.Println("Each miss goes to the optimization its MCT classification suggests:")
	fmt.Println("conflict misses are victim-cached (no swap), capacity misses are")
	fmt.Println("prefetched and/or excluded. The hit-rate columns show the combined")
	fmt.Println("policies covering both miss populations at once — the single buffer")
	fmt.Println("does the work of three.")
}
