// Victim-cache tuning: sweep the paper's four victim-cache policies and
// buffer sizes on a conflict-heavy workload (tomcatv's synthetic stand-in)
// and print the performance / traffic trade-off each policy strikes.
//
//	go run ./examples/victimtuning
//
// This is the Section-5.1 experiment as a library user would run it: pick
// a workload, build victim.System variants, and compare through sim.Run.
package main

import (
	"fmt"

	"repro/internal/assist"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/victim"
	"repro/internal/workload"
)

func main() {
	bench, _ := workload.ByName("tomcatv")
	opt := sim.Options{Instructions: 300_000}
	cfg := sim.L1Config()

	base := sim.Run(bench, assist.MustNewBaseline(cfg, 0), opt)
	fmt.Printf("workload %s: baseline IPC %.3f, L1 miss rate %.1f%%\n\n",
		bench.Name, base.IPC(), 100*base.Sys.MissRate())

	policies := []victim.Policy{
		victim.Traditional,
		victim.FilterSwapsPolicy,
		victim.FilterFillsPolicy,
		victim.FilterBothPolicy,
	}

	t := stats.NewTable("victim-cache policies on "+bench.Name,
		"policy", "entries", "speedup", "total HR %", "swaps %", "fills %")
	for _, entries := range []int{4, 8, 16} {
		for _, pol := range policies {
			r := sim.Run(bench, victim.MustNew(cfg, 0, entries, pol), opt)
			t.AddRow(pol.Name(), fmt.Sprint(entries),
				fmt.Sprintf("%.3f", r.IPC()/base.IPC()),
				fmt.Sprintf("%.1f", 100*r.Sys.TotalHitRate()),
				fmt.Sprintf("%.2f", 100*r.Sys.SwapRate()),
				fmt.Sprintf("%.2f", 100*r.Sys.FillRate()))
		}
	}
	fmt.Println(t)

	// The filters' sensitivity to the conflict-identification bias: run
	// filter-both under each of the paper's four filters.
	t2 := stats.NewTable("filter choice for the combined policy (8 entries)",
		"filter", "speedup", "fills %")
	for _, f := range core.Filters {
		pol := victim.Policy{FilterSwaps: true, FilterFills: true, Filter: f}
		r := sim.Run(bench, victim.MustNew(cfg, 0, 8, pol), opt)
		t2.AddRow(f.String(),
			fmt.Sprintf("%.3f", r.IPC()/base.IPC()),
			fmt.Sprintf("%.2f", 100*r.Sys.FillRate()))
	}
	fmt.Println(t2)
	fmt.Println("or-conflict (the paper's choice) admits the most evictions into the buffer;")
	fmt.Println("and-conflict is the stingiest — compare the fill rates above.")
}
